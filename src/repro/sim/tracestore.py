"""Persistent, content-keyed, mmap-shared store of run artifacts.

The expensive artifacts of an experiment cell — the application's access
trace and its LLC hit mask — are pure functions of the cell's content
key (see :mod:`repro.sim.tracecache`).  The in-process cache already
reuses them within one process, but the evaluation grid fans out across
*worker processes* and across *sessions*, and each worker used to rebuild
everything from scratch.  :class:`TraceStore` closes that gap:

- **Layout** — one directory per trace key under the store root
  (``REPRO_TRACE_STORE``), named by a SHA-256 digest of the key's repr::

      <root>/<digest>/trace.npy        flat int64 addresses, program order
      <root>/<digest>/trace.json       manifest: key, CRC32, phase table
      <root>/<digest>/mask-<llc>.npy   np.packbits-packed hit mask, one LLC
      <root>/<digest>/mask-<llc>.json  sidecar: llc signature, CRC32, length
      <root>/<digest>/reuse-<sig>.npy  float64 [4, n+1] gap rows + window curve
      <root>/<digest>/reuse-<sig>.json sidecar: line size, CRC32, length

  Hit masks are stored bit-packed (``np.packbits``, 8x smaller than raw
  bool) and unpacked transparently on load; the sidecar's
  ``mask_format`` stamp rejects pre-packing entries, which are rebuilt
  rather than migrated.  Reuse profiles (:mod:`repro.sim.reusepack`)
  are keyed by the trace and the *line size* only — one entry serves
  every LLC capacity.

  Arrays are plain ``.npy`` so they load with ``np.load(mmap_mode="r")``:
  every worker maps the *same* page-cache pages read-only — zero copies,
  shared across processes and sessions.

- **Atomicity** — every file is written to a pid-unique temp name in the
  entry directory and committed with ``os.replace``; the manifest /
  sidecar is committed *after* its array, so the presence of the JSON
  file implies a complete entry.  Concurrent writers race benignly: both
  produce byte-identical content (artifacts are deterministic) and the
  last rename wins.

- **Integrity** — manifests carry a CRC32 over the array bytes, verified
  once per process per entry on first load (the verification pass doubles
  as page-cache warming).  A truncated, corrupt, or mismatched entry is
  *rejected*: dropped from disk, counted in ``stats.rejects``, and
  recomputed by the caller.  The ``cache.store_torn`` fault site commits
  a deliberately truncated array file — simulating a writer that died
  mid-write — which is exactly what the CRC guard must catch.

- **Budget** — writes are followed by an eviction pass against the
  shared ``REPRO_CACHE_BYTES`` budget (:mod:`repro.cachebudget`); loads
  bump the entry's mtime so eviction is LRU-ish.

- **Leases** — a cross-process single-flight protocol
  (:meth:`TraceStore.single_flight`): the first worker to reach a cold
  (key, artifact) pair creates ``.lease-<what>`` in the entry directory
  with ``O_EXCL`` and folds the artifact; contenders wait (bounded by
  ``REPRO_LEASE_TIMEOUT``) and then *adopt* the committed entry instead
  of folding the same bytes concurrently.  A lease whose pid is dead —
  or that outlived the timeout — is *stale* and reclaimed, so a crashed
  primer never wedges the pipeline (see the ``store.lease_crash`` chaos
  case).  Leases are advisory: losing one never blocks a caller from
  building in-memory, it only stops duplicate *store* work.

- **Write policy** — persisting an artifact is only worth it when the
  write costs less than the rebuild it saves.  :meth:`TraceStore.
  should_persist` consults a process-wide EWMA of observed commit
  throughput and skips writes whose projected cost exceeds
  ``rebuild_seconds * 0.5`` (``REPRO_STORE_POLICY=always|adaptive|never``
  overrides).  Small writes (< 4 MiB) always persist — the policy
  exists to stop multi-hundred-MB folds from drowning the cold path in
  buffered-write system time, not to starve tests and tiny scales.
  Throughput is measured *durably*: large commits fsync before the
  rename and the first large decision is preceded by a one-time 4 MiB
  fsynced probe, because buffered writes land in the page cache at RAM
  speed and would teach the EWMA a bandwidth the disk cannot sustain —
  the deferred writeback then stalls the whole run off-stage.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Hashable, Iterable, Iterator

import numpy as np

from repro.cachebudget import TRACE_STORE_ENV, enforce_cache_budget, touch_entry
from repro.errors import TraceError
from repro.faults.injector import InjectedWorkerCrash, fault_point
from repro.faults.plan import SITE_STORE_LEASE_CRASH, SITE_STORE_TORN
from repro.mem.trace import AccessTrace
from repro.obs.bus import emit
from repro.obs.metrics import process_metrics
from repro.obs.tracer import span
from repro.sim.profilepack import (
    TraceProfile,
    profile_from_columnar,
    profile_to_columnar,
)
from repro.sim.reusepack import (
    REUSE_FORMAT,
    ReuseProfile,
    reuse_from_columnar,
    reuse_to_columnar,
)

FORMAT_VERSION = 1

#: Stamp for the bit-packed hit-mask layout.  Entries written before the
#: packing change carry no ``mask_format`` and are rejected (rebuilt,
#: not migrated — artifacts are cheap to recompute, migrations are not).
MASK_FORMAT = 2

TRACE_ARRAY = "trace.npy"
TRACE_MANIFEST = "trace.json"

#: Seconds before a lease with a live-looking file is considered stale.
LEASE_TIMEOUT_ENV = "REPRO_LEASE_TIMEOUT"
DEFAULT_LEASE_TIMEOUT = 30.0

#: Write policy override: ``always`` | ``adaptive`` (default) | ``never``.
STORE_POLICY_ENV = "REPRO_STORE_POLICY"

#: Writes at or below this size always persist (adaptive mode) — the
#: policy targets multi-hundred-MB artifact folds, not tiny-scale tests.
SMALL_WRITE_BYTES = 4 << 20

#: An adaptive write must pay for itself at least twice over: projected
#: write seconds must not exceed ``rebuild_seconds * WRITE_PAYBACK``.
WRITE_PAYBACK = 0.5

#: Commit samples below this size are too noisy to inform the EWMA.
_POLICY_SAMPLE_BYTES = 1 << 20

#: Streamed trace commits write at most this many bytes per chunk.
TRACE_WRITE_CHUNK_BYTES = 32 << 20

_TMP_SEQ = 0

#: Lease files held by this *process* (shared across handles so two
#: in-process store views never reclaim each other's live lease).
_HELD: set[Path] = set()


def lease_timeout() -> float:
    """Seconds before a lease is presumed abandoned (env-tunable)."""
    raw = os.environ.get(LEASE_TIMEOUT_ENV)
    if raw:
        try:
            value = float(raw)
        except ValueError:
            raise TraceError(
                f"{LEASE_TIMEOUT_ENV} must be a number, got {raw!r}"
            ) from None
        if value > 0:
            return value
    return DEFAULT_LEASE_TIMEOUT


class _WritePolicy:
    """Process-wide adaptive write-value policy.

    Tracks an EWMA of observed *durable* commit throughput (bytes per
    second over the tempfile write + fsync + rename) and answers "is
    persisting ``nbytes`` worth ``rebuild_seconds``?".  With no samples
    yet a large write is admitted blind, so :class:`TraceStore` runs a
    cheap fsynced probe (:meth:`TraceStore._calibrate_policy`) before
    the first large decision — a multi-hundred-MB artifact must never
    be the calibration sample on a slow disk.
    """

    def __init__(self) -> None:
        self.ewma_bps: float | None = None
        self.samples = 0
        #: One-shot probe guard (set even when the probe write fails).
        self.probed = False

    def observe(self, nbytes: int, seconds: float) -> None:
        if nbytes < _POLICY_SAMPLE_BYTES or seconds <= 0:
            return
        bps = nbytes / seconds
        self.ewma_bps = (
            bps if self.ewma_bps is None else 0.5 * self.ewma_bps + 0.5 * bps
        )
        self.samples += 1

    def should_persist(
        self, nbytes: int, rebuild_seconds: float | None
    ) -> bool:
        mode = os.environ.get(STORE_POLICY_ENV, "adaptive")
        if mode == "never":
            return False
        if mode != "adaptive" or rebuild_seconds is None:
            return True
        if nbytes <= SMALL_WRITE_BYTES:
            return True
        if self.ewma_bps is None:
            return True  # calibration write: measure, then decide
        projected = nbytes / self.ewma_bps
        return projected <= rebuild_seconds * WRITE_PAYBACK


_WRITE_POLICY = _WritePolicy()


def write_policy() -> _WritePolicy:
    """The per-process adaptive write policy singleton."""
    return _WRITE_POLICY


def store_root() -> Path | None:
    """The configured store root, or ``None`` when the store is off."""
    raw = os.environ.get(TRACE_STORE_ENV)
    if not raw:
        return None
    return Path(raw)


def key_digest(key: Hashable) -> str:
    """Stable directory name for a content key."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:24]


def llc_digest(llc_sig: tuple) -> str:
    """Stable file-name component for an LLC geometry signature."""
    return hashlib.sha256(repr(llc_sig).encode("utf-8")).hexdigest()[:12]


def _crc32(array: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(array).view(np.uint8).data)


@dataclass
class TraceStoreStats:
    """Per-process counters for one store handle."""

    trace_loads: int = 0
    trace_saves: int = 0
    mask_loads: int = 0
    mask_saves: int = 0
    profile_loads: int = 0
    profile_saves: int = 0
    reuse_loads: int = 0
    reuse_saves: int = 0
    #: Entries dropped because they failed CRC / shape / format checks.
    rejects: int = 0
    #: Single-flight leases won / waited-on / adopted-after-wait /
    #: reclaimed-from-a-dead-holder by this handle.
    lease_acquires: int = 0
    lease_waits: int = 0
    lease_adoptions: int = 0
    lease_reclaims: int = 0
    #: Writes skipped by the adaptive write-value policy.
    policy_skips: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "trace_loads": self.trace_loads,
            "trace_saves": self.trace_saves,
            "mask_loads": self.mask_loads,
            "mask_saves": self.mask_saves,
            "profile_loads": self.profile_loads,
            "profile_saves": self.profile_saves,
            "reuse_loads": self.reuse_loads,
            "reuse_saves": self.reuse_saves,
            "rejects": self.rejects,
            "lease_acquires": self.lease_acquires,
            "lease_waits": self.lease_waits,
            "lease_adoptions": self.lease_adoptions,
            "lease_reclaims": self.lease_reclaims,
            "policy_skips": self.policy_skips,
        }


class TraceStore:
    """Content-keyed on-disk store of traces and LLC hit masks."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.stats = TraceStoreStats()
        #: Array files CRC-verified by this process already (mmap loads
        #: re-verify nothing; the page cache is trusted once checked).
        self._verified: set[Path] = set()
        #: Lease files this handle currently holds (release targets).
        self._held: set[Path] = set()

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def entry_dir(self, key: Hashable) -> Path:
        return self.root / key_digest(key)

    def _mask_paths(self, key: Hashable, llc_sig: tuple) -> tuple[Path, Path]:
        stem = f"mask-{llc_digest(llc_sig)}"
        entry = self.entry_dir(key)
        return entry / f"{stem}.npy", entry / f"{stem}.json"

    def _profile_paths(self, key: Hashable, llc_sig: tuple) -> tuple[Path, Path]:
        stem = f"profile-{llc_digest(llc_sig)}"
        entry = self.entry_dir(key)
        return entry / f"{stem}.npy", entry / f"{stem}.json"

    def _reuse_paths(self, key: Hashable, line_size: int) -> tuple[Path, Path]:
        # Keyed by line granularity only — capacity-independent by design.
        stem = f"reuse-{llc_digest(('reuse', int(line_size)))}"
        entry = self.entry_dir(key)
        return entry / f"{stem}.npy", entry / f"{stem}.json"

    # ------------------------------------------------------------------
    # write policy
    # ------------------------------------------------------------------
    def should_persist(
        self, nbytes: int, rebuild_seconds: float | None = None
    ) -> bool:
        """Whether persisting ``nbytes`` is worth ``rebuild_seconds``.

        Consults the process-wide adaptive write policy (see the module
        docstring).  Callers that skip a save on ``False`` keep the
        artifact purely in-memory — correctness never depends on the
        store, only warm-start time does.
        """
        if (
            rebuild_seconds is not None
            and nbytes > SMALL_WRITE_BYTES
            and os.environ.get(STORE_POLICY_ENV, "adaptive") == "adaptive"
        ):
            self._calibrate_policy()
        verdict = _WRITE_POLICY.should_persist(nbytes, rebuild_seconds)
        if not verdict:
            self.stats.policy_skips += 1
            process_metrics().inc("store.policy_skips")
        return verdict

    def _calibrate_policy(self) -> None:
        """One-time durable-throughput probe before the first large call.

        Writes and fsyncs 4 MiB under the store root, feeds the timing
        to the policy EWMA, and deletes the file.  Costs well under a
        second even on a saturated disk; letting a ~190 MB reuse fold
        be the blind first sample instead can cost tens of seconds of
        writeback on a shared host.  Probe failures (read-only root,
        quota) leave the policy in its admit-blind fallback.
        """
        if _WRITE_POLICY.probed or _WRITE_POLICY.ewma_bps is not None:
            return
        _WRITE_POLICY.probed = True
        probe = self.root / f".probe-{os.getpid()}.tmp"
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            started = time.monotonic()
            with open(probe, "wb") as handle:
                handle.write(b"\0" * SMALL_WRITE_BYTES)
                handle.flush()
                os.fsync(handle.fileno())
            _WRITE_POLICY.observe(
                SMALL_WRITE_BYTES, time.monotonic() - started
            )
        except OSError:
            pass
        finally:
            try:
                probe.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # single-flight leases
    # ------------------------------------------------------------------
    def _lease_path(self, key: Hashable, what: str) -> Path:
        # Dot-prefixed so the cache-budget walker never counts or evicts
        # lease files as artifacts.
        return self.entry_dir(key) / f".lease-{what}"

    def acquire_lease(self, key: Hashable, what: str) -> bool:
        """Try to win the single-flight lease for ``(key, what)``.

        ``True`` means this process now holds the lease and must
        :meth:`release_lease` when its fold commits (or fails).  A lease
        held by a *dead* pid — or older than ``REPRO_LEASE_TIMEOUT`` —
        is stale and reclaimed before retrying.  An unwritable store
        degrades to ``True`` without a lease file: single-flight is an
        optimisation, never a correctness gate.
        """
        path = self._lease_path(key, what)
        for attempt in range(2):
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if attempt or not self._lease_stale(path):
                    return False
                self._reclaim_lease(path)
                continue
            except OSError:
                return True  # read-only/full disk: build unleased
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump({"pid": os.getpid(), "born": time.time()}, handle)
            _HELD.add(path)
            self.stats.lease_acquires += 1
            process_metrics().inc("store.lease_acquires")
            if (
                fault_point(
                    SITE_STORE_LEASE_CRASH,
                    tag=f"{path.parent.name}/{what}",
                    detail=str(path),
                )
                is not None
            ):
                # The holder "dies": its lease file stays on disk with a
                # pid that will never release it — the exact residue a
                # crashed primer leaves for stale-lease reclamation.
                _HELD.discard(path)
                raise InjectedWorkerCrash(
                    f"injected lease-holder crash at {path.name}"
                )
            return True
        return False

    def release_lease(self, key: Hashable, what: str) -> None:
        """Release a lease this process holds (no-op otherwise)."""
        path = self._lease_path(key, what)
        if path not in _HELD:
            return
        _HELD.discard(path)
        try:
            path.unlink()
        except OSError:
            return  # already reclaimed or evicted with the entry

    def heartbeat_lease(self, key: Hashable, what: str) -> None:
        """Refresh a held lease's mtime so long folds never look stale."""
        path = self._lease_path(key, what)
        if path not in _HELD:
            return
        try:
            os.utime(path)
        except OSError:
            _HELD.discard(path)  # lost to reclamation; stop claiming it

    def wait_for_lease(
        self,
        key: Hashable,
        what: str,
        done: Callable[[], bool],
        timeout: float | None = None,
    ) -> bool:
        """Wait for another holder's fold; ``True`` when ``done()`` holds.

        Polls until the artifact lands (``done()``), the lease file
        vanishes (released — the winner may have *skipped* persisting
        under the write policy, so absence does not imply an artifact),
        the lease goes stale, or the bounded wait expires.  ``True``
        counts as an adoption: the caller reads the committed artifact
        instead of folding it again.
        """
        path = self._lease_path(key, what)
        deadline = time.monotonic() + (
            lease_timeout() if timeout is None else timeout
        )
        self.stats.lease_waits += 1
        process_metrics().inc("store.lease_waits")
        with span("store.lease_wait", cat="store", entry=path.parent.name):
            while time.monotonic() < deadline:
                if done():
                    break
                if not path.exists() or self._lease_stale(path):
                    break
                time.sleep(0.05)
        if done():
            self.stats.lease_adoptions += 1
            process_metrics().inc("store.lease_adoptions")
            return True
        return False

    @contextmanager
    def single_flight(
        self,
        key: Hashable,
        what: str,
        done: Callable[[], bool] | None = None,
    ) -> Iterator[bool]:
        """Cross-process single-flight around one artifact fold.

        Yields ``True`` when this process won the lease — the caller
        folds and saves, and the lease is released on exit even if the
        fold raises.  Yields ``False`` after a bounded wait on another
        holder — the caller re-checks the store (``done`` turning true
        means the artifact landed) and folds in-memory otherwise.
        """
        if self.acquire_lease(key, what):
            try:
                yield True
            finally:
                self.release_lease(key, what)
            return
        self.wait_for_lease(key, what, done if done is not None else lambda: False)
        yield False

    def _lease_stale(self, path: Path) -> bool:
        """Whether a lease file no longer protects a live fold."""
        try:
            mtime = path.stat().st_mtime
            payload = json.loads(path.read_text(encoding="utf-8"))
            pid = int(payload["pid"])
        except (OSError, ValueError, KeyError, TypeError):
            # Vanished = released (not stale); present but unreadable =
            # a torn lease write, which only reclamation can clear.
            return path.exists()
        if pid == os.getpid():
            # Our own pid but not held by this process's live handles:
            # a previous incarnation crashed mid-lease and we inherited
            # its pid-slot (in-process retry after InjectedWorkerCrash).
            return path not in _HELD
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True  # holder is dead
        except PermissionError:
            # Alive under another uid; fall through to the age check.
            return (time.time() - mtime) > lease_timeout()
        return (time.time() - mtime) > lease_timeout()

    def _reclaim_lease(self, path: Path) -> None:
        self.stats.lease_reclaims += 1
        process_metrics().inc("store.lease_reclaims")
        emit(
            "store.lease_reclaim",
            "stale lease reclaimed",
            source="store",
            entry=path.parent.name,
            lease=path.name,
        )
        _HELD.discard(path)
        try:
            path.unlink()
        except OSError:
            return  # another contender reclaimed it first

    # ------------------------------------------------------------------
    # inventory (the `repro store` CLI surface)
    # ------------------------------------------------------------------
    def entries(self) -> Iterator[dict]:
        """One inventory row per store entry (committed or in-flight)."""
        if not self.root.is_dir():
            return
        for entry in sorted(self.root.iterdir()):
            if not entry.is_dir():
                continue
            files = [f for f in entry.iterdir() if f.is_file()]
            visible = [f for f in files if not f.name.startswith(".")]
            leases = [f for f in files if f.name.startswith(".lease-")]
            manifest = self._read_json(entry / TRACE_MANIFEST) or {}
            kinds = sorted(
                {f.name.split("-")[0].split(".")[0] for f in visible}
            )
            yield {
                "digest": entry.name,
                "key": manifest.get("key", ""),
                "accesses": int(manifest.get("total", 0)),
                "bytes": sum(f.stat().st_size for f in visible),
                "files": len(visible),
                "artifacts": kinds,
                "leases": [
                    {
                        "what": f.name[len(".lease-"):],
                        "stale": self._lease_stale(f),
                    }
                    for f in leases
                ],
            }

    def remove_entry(self, digest: str) -> bool:
        """Drop one entry directory by digest (the ``store rm`` verb)."""
        entry = self.root / digest
        if not entry.is_dir():
            return False
        self._verified = {p for p in self._verified if p.parent != entry}
        shutil.rmtree(entry, ignore_errors=True)
        return True

    # ------------------------------------------------------------------
    # traces
    # ------------------------------------------------------------------
    def has_trace(self, key: Hashable) -> bool:
        """Whether a committed trace entry exists (manifest present)."""
        return (self.entry_dir(key) / TRACE_MANIFEST).exists()

    def has_entry(self, key: Hashable) -> bool:
        """Whether the store holds *any* committed artifact for this key.

        Weaker than :meth:`has_trace`: the adaptive write policy may skip
        the raw trace yet persist the small derived artifacts, and a key
        whose entry already has visible files has been primed once —
        whatever is missing was judged cheaper to rebuild than to store.
        The cold-dispatch planner keys off this, so a policy-thinned
        store does not get re-primed on every warm run.
        """
        entry = self.entry_dir(key)
        if not entry.is_dir():
            return False
        return any(
            f.is_file() and not f.name.startswith(".") for f in entry.iterdir()
        )

    def save_trace(self, key: Hashable, trace: AccessTrace) -> bool:
        """Persist a trace (no-op when the entry already exists).

        The address stream is written *chunk by chunk* straight from the
        trace's phase arrays (:meth:`repro.mem.trace.AccessTrace.
        iter_chunks`) — no flat ``all_addresses`` copy is materialised,
        so saving a multi-GB trace costs zero extra resident bytes and
        the CRC folds incrementally over the same chunks.
        """
        entry = self.entry_dir(key)
        if (entry / TRACE_MANIFEST).exists():
            return False
        total = trace.total_accesses
        try:
            with span("store.save_trace", cat="store", entry=entry.name):
                entry.mkdir(parents=True, exist_ok=True)
                crc = self._commit_trace_stream(
                    entry / TRACE_ARRAY,
                    trace.iter_chunks(TRACE_WRITE_CHUNK_BYTES),
                    total,
                    tag=f"{entry.name}/trace",
                )
                manifest = {
                    "format": FORMAT_VERSION,
                    "key": repr(key),
                    "total": int(total),
                    "crc32": crc,
                    "phases": trace.phase_records(),
                }
                self._commit_json(entry / TRACE_MANIFEST, manifest)
        except OSError:
            return False  # a full/read-only disk degrades to no caching
        self.stats.trace_saves += 1
        process_metrics().inc("store.trace_saves")
        enforce_cache_budget(protect={entry})
        return True

    def load_trace(self, key: Hashable) -> AccessTrace | None:
        """The stored trace as zero-copy mmap views, or ``None``."""
        entry = self.entry_dir(key)
        manifest_path = entry / TRACE_MANIFEST
        manifest = self._read_json(manifest_path)
        if manifest is None:
            return None
        with span("store.load_trace", cat="store", entry=entry.name):
            if manifest.get("format") != FORMAT_VERSION:
                return self._reject_entry(key, "format version mismatch")
            flat = self._load_array(
                entry / TRACE_ARRAY,
                dtype=np.int64,
                shape=(int(manifest.get("total", -1)),),
                crc32=manifest.get("crc32"),
            )
            if flat is None:
                return self._reject_entry(key, "trace array failed validation")
            try:
                trace = AccessTrace.from_columnar(flat, manifest.get("phases", []))
            except (KeyError, ValueError, TypeError, TraceError) as exc:
                # Any malformed phase table means the entry cannot be trusted.
                return self._reject_entry(key, f"bad phase table: {exc}")
        self.stats.trace_loads += 1
        process_metrics().inc("store.trace_loads")
        touch_entry(entry)
        return trace

    # ------------------------------------------------------------------
    # hit masks
    # ------------------------------------------------------------------
    def has_mask(self, key: Hashable, llc_sig: tuple) -> bool:
        return self._mask_paths(key, llc_sig)[1].exists()

    def save_mask(
        self, key: Hashable, llc_sig: tuple, mask: np.ndarray
    ) -> bool:
        """Persist one LLC geometry's hit mask for a stored trace.

        Masks are bit-packed (``np.packbits``) before hitting disk — 8x
        smaller than raw bool — and the sidecar records the unpacked
        length so loads can trim the pad bits.  The CRC covers the
        *packed* bytes (what is actually on disk).
        """
        array_path, sidecar_path = self._mask_paths(key, llc_sig)
        if sidecar_path.exists():
            return False
        mask = np.ascontiguousarray(mask, dtype=np.bool_)
        packed = np.packbits(mask)
        sidecar = {
            "format": FORMAT_VERSION,
            "mask_format": MASK_FORMAT,
            "llc": list(llc_sig),
            "n": int(mask.size),
            "crc32": _crc32(packed),
        }
        try:
            array_path.parent.mkdir(parents=True, exist_ok=True)
            self._commit_array(
                array_path, packed, tag=f"{array_path.parent.name}/mask"
            )
            self._commit_json(sidecar_path, sidecar)
        except OSError:
            return False
        self.stats.mask_saves += 1
        process_metrics().inc("store.mask_saves")
        enforce_cache_budget(protect={array_path.parent})
        return True

    def load_mask(
        self, key: Hashable, llc_sig: tuple, expected_len: int
    ) -> np.ndarray | None:
        """The stored hit mask (unpacked, read-only), or ``None``.

        A sidecar without the current ``mask_format`` stamp — an
        unpacked pre-packing entry — fails validation like any other
        stale artifact and is rebuilt by the caller.
        """
        array_path, sidecar_path = self._mask_paths(key, llc_sig)
        sidecar = self._read_json(sidecar_path)
        if sidecar is None:
            return None
        if (
            sidecar.get("format") != FORMAT_VERSION
            or sidecar.get("mask_format") != MASK_FORMAT
            or sidecar.get("llc") != list(llc_sig)
            or int(sidecar.get("n", -1)) != expected_len
        ):
            return self._reject_files(array_path, sidecar_path, "mask")
        packed = self._load_array(
            array_path,
            dtype=np.uint8,
            shape=((expected_len + 7) // 8,),
            crc32=sidecar.get("crc32"),
        )
        if packed is None:
            return self._reject_files(array_path, sidecar_path, "mask")
        mask = np.unpackbits(np.asarray(packed), count=expected_len).view(np.bool_)
        mask.flags.writeable = False
        self.stats.mask_loads += 1
        process_metrics().inc("store.mask_loads")
        touch_entry(array_path.parent)
        return mask

    # ------------------------------------------------------------------
    # compiled profiles
    # ------------------------------------------------------------------
    def has_profile(self, key: Hashable, llc_sig: tuple) -> bool:
        return self._profile_paths(key, llc_sig)[1].exists()

    def save_profile(
        self, key: Hashable, llc_sig: tuple, profile: TraceProfile
    ) -> bool:
        """Persist one LLC geometry's compiled miss profile.

        The CSR pages/counts pair lands as one stacked ``int64 [2, nnz]``
        array (mmap-shareable like traces and masks); the per-phase
        metadata rides in the JSON sidecar together with the array CRC.
        """
        array_path, sidecar_path = self._profile_paths(key, llc_sig)
        if sidecar_path.exists():
            return False
        stacked, record = profile_to_columnar(profile)
        sidecar = {
            "format": FORMAT_VERSION,
            "llc": list(llc_sig),
            "crc32": _crc32(stacked),
            **record,
        }
        try:
            array_path.parent.mkdir(parents=True, exist_ok=True)
            self._commit_array(
                array_path, stacked, tag=f"{array_path.parent.name}/profile"
            )
            self._commit_json(sidecar_path, sidecar)
        except OSError:
            return False
        self.stats.profile_saves += 1
        process_metrics().inc("store.profile_saves")
        enforce_cache_budget(protect={array_path.parent})
        return True

    def load_profile(
        self,
        key: Hashable,
        llc_sig: tuple,
        *,
        expected_phases: int,
        expected_accesses: int,
    ) -> TraceProfile | None:
        """The stored profile (CSR arrays as mmap views), or ``None``.

        ``expected_phases``/``expected_accesses`` come from the trace the
        caller is about to price; a stored profile describing a different
        trace shape is stale and rejected like any corrupt entry.
        """
        array_path, sidecar_path = self._profile_paths(key, llc_sig)
        sidecar = self._read_json(sidecar_path)
        if sidecar is None:
            return None
        if (
            sidecar.get("format") != FORMAT_VERSION
            or sidecar.get("llc") != list(llc_sig)
        ):
            return self._reject_files(array_path, sidecar_path, "profile")
        try:
            nnz = int(sidecar.get("nnz", -1))
        except (TypeError, ValueError):
            return self._reject_files(array_path, sidecar_path, "profile")
        if nnz < 0:
            return self._reject_files(array_path, sidecar_path, "profile")
        stacked = self._load_array(
            array_path,
            dtype=np.int64,
            shape=(2, nnz),
            crc32=sidecar.get("crc32"),
        )
        if stacked is None:
            return self._reject_files(array_path, sidecar_path, "profile")
        try:
            profile = profile_from_columnar(stacked, sidecar)
        except TraceError:
            return self._reject_files(array_path, sidecar_path, "profile")
        if (
            profile.n_phases != expected_phases
            or profile.total_accesses != expected_accesses
        ):
            return self._reject_files(array_path, sidecar_path, "profile")
        self.stats.profile_loads += 1
        process_metrics().inc("store.profile_loads")
        touch_entry(array_path.parent)
        return profile

    # ------------------------------------------------------------------
    # reuse profiles
    # ------------------------------------------------------------------
    def has_reuse(self, key: Hashable, line_size: int) -> bool:
        return self._reuse_paths(key, line_size)[1].exists()

    def save_reuse(
        self, key: Hashable, line_size: int, profile: ReuseProfile
    ) -> bool:
        """Persist one trace's compiled reuse profile.

        Artifact v2: the gap rows (int64 bit patterns) and the
        pre-computed window curve land as one ``float64 [4, n + 1]``
        array (see :func:`repro.sim.reusepack.reuse_to_columnar`,
        mmap-shareable like traces); the line granularity, length and
        ``reuse_format`` stamp ride in the JSON sidecar together with
        the array CRC.  One entry per (trace, line size) serves every
        LLC capacity, with zero per-process float work at load.
        """
        array_path, sidecar_path = self._reuse_paths(key, line_size)
        if sidecar_path.exists():
            return False
        stacked, record = reuse_to_columnar(profile)
        sidecar = {
            "format": FORMAT_VERSION,
            "crc32": _crc32(stacked),
            **record,
        }
        try:
            array_path.parent.mkdir(parents=True, exist_ok=True)
            self._commit_array(
                array_path, stacked, tag=f"{array_path.parent.name}/reuse"
            )
            self._commit_json(sidecar_path, sidecar)
        except OSError:
            return False
        self.stats.reuse_saves += 1
        process_metrics().inc("store.reuse_saves")
        enforce_cache_budget(protect={array_path.parent})
        return True

    def load_reuse(
        self, key: Hashable, line_size: int, expected_len: int
    ) -> ReuseProfile | None:
        """The stored reuse profile (gap rows as mmap views), or ``None``.

        ``expected_len`` is the access count of the trace the caller is
        about to derive masks for; a profile of a different length is
        stale and rejected like any corrupt entry.  So is a pre-curve v1
        entry (``reuse_format`` below :data:`~repro.sim.reusepack.
        REUSE_FORMAT`, or the old ``int64 [2, n]`` array shape) — v1 is
        rebuilt, never migrated.
        """
        array_path, sidecar_path = self._reuse_paths(key, line_size)
        sidecar = self._read_json(sidecar_path)
        if sidecar is None:
            return None
        try:
            stale = (
                sidecar.get("format") != FORMAT_VERSION
                or int(sidecar.get("reuse_format", -1)) != REUSE_FORMAT
                or int(sidecar.get("line_size", -1)) != int(line_size)
                or int(sidecar.get("n", -1)) != expected_len
            )
        except (TypeError, ValueError):
            stale = True
        if stale:
            return self._reject_files(array_path, sidecar_path, "reuse")
        stacked = self._load_array(
            array_path,
            dtype=np.float64,
            shape=(4, expected_len + 1),
            crc32=sidecar.get("crc32"),
        )
        if stacked is None:
            return self._reject_files(array_path, sidecar_path, "reuse")
        try:
            profile = reuse_from_columnar(stacked, sidecar)
        except TraceError:
            return self._reject_files(array_path, sidecar_path, "reuse")
        self.stats.reuse_loads += 1
        process_metrics().inc("store.reuse_loads")
        touch_entry(array_path.parent)
        return profile

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _commit_array(self, path: Path, array: np.ndarray, *, tag: str) -> None:
        """Atomic tempfile+rename commit of one ``.npy`` array.

        The ``cache.store_torn`` fault truncates the temp file before the
        rename — committing a torn array under an intact manifest, the
        exact state a crashed non-atomic writer (or a lost flush) leaves
        behind and the load-side CRC guard must reject.
        """
        global _TMP_SEQ
        _TMP_SEQ += 1
        tmp = path.parent / f".{path.name}.{os.getpid()}.{_TMP_SEQ}.tmp"
        started = time.monotonic()
        with open(tmp, "wb") as handle:
            np.save(handle, array)
            if int(array.nbytes) >= _POLICY_SAMPLE_BYTES:
                # Durable timing: without the fsync the page cache
                # absorbs the write at RAM speed, the EWMA learns a
                # fictional bandwidth, and the deferred writeback
                # stalls the run off-stage instead.
                handle.flush()
                os.fsync(handle.fileno())
        if fault_point(SITE_STORE_TORN, tag=tag, detail=str(path)) is not None:
            size = tmp.stat().st_size
            with open(tmp, "r+b") as handle:
                handle.truncate(max(1, size // 2))
        os.replace(tmp, path)
        _WRITE_POLICY.observe(int(array.nbytes), time.monotonic() - started)

    def _commit_trace_stream(
        self,
        path: Path,
        chunks: Iterable[np.ndarray],
        total: int,
        *,
        tag: str,
    ) -> int:
        """Atomic commit of one int64 ``.npy`` written chunk-by-chunk.

        Hand-writes the 1.0 array header (``np.load`` reads it exactly
        like ``np.save``'s output) and streams each chunk's buffer, so
        the flat address array never exists in memory.  Returns the
        CRC32 folded over the chunk bytes — identical to the CRC of the
        concatenated array, so load-side verification is unchanged.
        """
        global _TMP_SEQ
        _TMP_SEQ += 1
        tmp = path.parent / f".{path.name}.{os.getpid()}.{_TMP_SEQ}.tmp"
        header = {
            "descr": np.lib.format.dtype_to_descr(np.dtype(np.int64)),
            "fortran_order": False,
            "shape": (int(total),),
        }
        started = time.monotonic()
        crc = 0
        written = 0
        with open(tmp, "wb") as handle:
            np.lib.format.write_array_header_1_0(handle, header)
            for chunk in chunks:
                chunk = np.ascontiguousarray(chunk, dtype=np.int64)
                crc = zlib.crc32(chunk.view(np.uint8).data, crc)
                handle.write(chunk.data)
                written += chunk.size
            if written * 8 >= _POLICY_SAMPLE_BYTES:
                # Durable timing — same rationale as _commit_array.
                handle.flush()
                os.fsync(handle.fileno())
        if written != int(total):
            tmp.unlink()
            raise TraceError(
                f"trace chunks yielded {written} accesses, header promised "
                f"{total}"
            )
        if fault_point(SITE_STORE_TORN, tag=tag, detail=str(path)) is not None:
            size = tmp.stat().st_size
            with open(tmp, "r+b") as handle:
                handle.truncate(max(1, size // 2))
        os.replace(tmp, path)
        _WRITE_POLICY.observe(written * 8, time.monotonic() - started)
        return crc

    def _commit_json(self, path: Path, payload: dict) -> None:
        global _TMP_SEQ
        _TMP_SEQ += 1
        tmp = path.parent / f".{path.name}.{os.getpid()}.{_TMP_SEQ}.tmp"
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

    def _read_json(self, path: Path) -> dict | None:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def _load_array(
        self, path: Path, *, dtype, shape: tuple, crc32
    ) -> np.ndarray | None:
        """mmap one array file; validate shape/dtype/CRC (once per process)."""
        try:
            array = np.load(path, mmap_mode="r")
        except (OSError, ValueError, EOFError):
            return None
        if array.dtype != dtype or array.shape != tuple(shape):
            return None
        if path not in self._verified:
            if not isinstance(crc32, int) or _crc32(array) != crc32:
                return None
            self._verified.add(path)
        return array

    def _reject_entry(self, key: Hashable, reason: str) -> None:
        """Drop a whole entry that failed validation; caller recomputes."""
        self.stats.rejects += 1
        process_metrics().inc("store.rejects")
        entry = self.entry_dir(key)
        emit("store.reject", reason, source="store", entry=entry.name)
        self._verified = {p for p in self._verified if p.parent != entry}
        shutil.rmtree(entry, ignore_errors=True)
        return None

    def _reject_files(
        self, array_path: Path, sidecar_path: Path, what: str
    ) -> None:
        """Drop one per-LLC artifact (mask/profile) pair; caller rebuilds."""
        self.stats.rejects += 1
        process_metrics().inc("store.rejects")
        emit(
            "store.reject",
            f"{what} failed validation",
            source="store",
            entry=array_path.parent.name,
        )
        for path in (sidecar_path, array_path):
            self._verified.discard(path)
            try:
                path.unlink()
            except OSError:
                continue
        return None


# ----------------------------------------------------------------------
# process-wide store handle
# ----------------------------------------------------------------------
_PROCESS_STORE: TraceStore | None = None
_PROCESS_ROOT: Path | None = None


def process_trace_store() -> TraceStore | None:
    """The per-process store bound to ``REPRO_TRACE_STORE`` (or ``None``).

    Re-resolved when the environment variable changes, so tests and the
    CLI can re-point the store mid-process.
    """
    global _PROCESS_STORE, _PROCESS_ROOT
    root = store_root()
    if root is None:
        _PROCESS_STORE = None
        _PROCESS_ROOT = None
        return None
    if _PROCESS_STORE is None or _PROCESS_ROOT != root:
        _PROCESS_STORE = TraceStore(root)
        _PROCESS_ROOT = root
    return _PROCESS_STORE
