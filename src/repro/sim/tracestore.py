"""Persistent, content-keyed, mmap-shared store of run artifacts.

The expensive artifacts of an experiment cell — the application's access
trace and its LLC hit mask — are pure functions of the cell's content
key (see :mod:`repro.sim.tracecache`).  The in-process cache already
reuses them within one process, but the evaluation grid fans out across
*worker processes* and across *sessions*, and each worker used to rebuild
everything from scratch.  :class:`TraceStore` closes that gap:

- **Layout** — one directory per trace key under the store root
  (``REPRO_TRACE_STORE``), named by a SHA-256 digest of the key's repr::

      <root>/<digest>/trace.npy        flat int64 addresses, program order
      <root>/<digest>/trace.json       manifest: key, CRC32, phase table
      <root>/<digest>/mask-<llc>.npy   np.packbits-packed hit mask, one LLC
      <root>/<digest>/mask-<llc>.json  sidecar: llc signature, CRC32, length
      <root>/<digest>/reuse-<sig>.npy  float64 [4, n+1] gap rows + window curve
      <root>/<digest>/reuse-<sig>.json sidecar: line size, CRC32, length

  Hit masks are stored bit-packed (``np.packbits``, 8x smaller than raw
  bool) and unpacked transparently on load; the sidecar's
  ``mask_format`` stamp rejects pre-packing entries, which are rebuilt
  rather than migrated.  Reuse profiles (:mod:`repro.sim.reusepack`)
  are keyed by the trace and the *line size* only — one entry serves
  every LLC capacity.

  Arrays are plain ``.npy`` so they load with ``np.load(mmap_mode="r")``:
  every worker maps the *same* page-cache pages read-only — zero copies,
  shared across processes and sessions.

- **Atomicity** — every file is written to a pid-unique temp name in the
  entry directory and committed with ``os.replace``; the manifest /
  sidecar is committed *after* its array, so the presence of the JSON
  file implies a complete entry.  Concurrent writers race benignly: both
  produce byte-identical content (artifacts are deterministic) and the
  last rename wins.

- **Integrity** — manifests carry a CRC32 over the array bytes, verified
  once per process per entry on first load (the verification pass doubles
  as page-cache warming).  A truncated, corrupt, or mismatched entry is
  *rejected*: dropped from disk, counted in ``stats.rejects``, and
  recomputed by the caller.  The ``cache.store_torn`` fault site commits
  a deliberately truncated array file — simulating a writer that died
  mid-write — which is exactly what the CRC guard must catch.

- **Budget** — writes are followed by an eviction pass against the
  shared ``REPRO_CACHE_BYTES`` budget (:mod:`repro.cachebudget`); loads
  bump the entry's mtime so eviction is LRU-ish.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Hashable

import numpy as np

from repro.cachebudget import TRACE_STORE_ENV, enforce_cache_budget, touch_entry
from repro.errors import TraceError
from repro.faults.injector import fault_point
from repro.faults.plan import SITE_STORE_TORN
from repro.mem.trace import AccessTrace
from repro.obs.bus import emit
from repro.obs.metrics import process_metrics
from repro.obs.tracer import span
from repro.sim.profilepack import (
    TraceProfile,
    profile_from_columnar,
    profile_to_columnar,
)
from repro.sim.reusepack import (
    REUSE_FORMAT,
    ReuseProfile,
    reuse_from_columnar,
    reuse_to_columnar,
)

FORMAT_VERSION = 1

#: Stamp for the bit-packed hit-mask layout.  Entries written before the
#: packing change carry no ``mask_format`` and are rejected (rebuilt,
#: not migrated — artifacts are cheap to recompute, migrations are not).
MASK_FORMAT = 2

TRACE_ARRAY = "trace.npy"
TRACE_MANIFEST = "trace.json"

_TMP_SEQ = 0


def store_root() -> Path | None:
    """The configured store root, or ``None`` when the store is off."""
    raw = os.environ.get(TRACE_STORE_ENV)
    if not raw:
        return None
    return Path(raw)


def key_digest(key: Hashable) -> str:
    """Stable directory name for a content key."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:24]


def llc_digest(llc_sig: tuple) -> str:
    """Stable file-name component for an LLC geometry signature."""
    return hashlib.sha256(repr(llc_sig).encode("utf-8")).hexdigest()[:12]


def _crc32(array: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(array).view(np.uint8).data)


@dataclass
class TraceStoreStats:
    """Per-process counters for one store handle."""

    trace_loads: int = 0
    trace_saves: int = 0
    mask_loads: int = 0
    mask_saves: int = 0
    profile_loads: int = 0
    profile_saves: int = 0
    reuse_loads: int = 0
    reuse_saves: int = 0
    #: Entries dropped because they failed CRC / shape / format checks.
    rejects: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "trace_loads": self.trace_loads,
            "trace_saves": self.trace_saves,
            "mask_loads": self.mask_loads,
            "mask_saves": self.mask_saves,
            "profile_loads": self.profile_loads,
            "profile_saves": self.profile_saves,
            "reuse_loads": self.reuse_loads,
            "reuse_saves": self.reuse_saves,
            "rejects": self.rejects,
        }


class TraceStore:
    """Content-keyed on-disk store of traces and LLC hit masks."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.stats = TraceStoreStats()
        #: Array files CRC-verified by this process already (mmap loads
        #: re-verify nothing; the page cache is trusted once checked).
        self._verified: set[Path] = set()

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def entry_dir(self, key: Hashable) -> Path:
        return self.root / key_digest(key)

    def _mask_paths(self, key: Hashable, llc_sig: tuple) -> tuple[Path, Path]:
        stem = f"mask-{llc_digest(llc_sig)}"
        entry = self.entry_dir(key)
        return entry / f"{stem}.npy", entry / f"{stem}.json"

    def _profile_paths(self, key: Hashable, llc_sig: tuple) -> tuple[Path, Path]:
        stem = f"profile-{llc_digest(llc_sig)}"
        entry = self.entry_dir(key)
        return entry / f"{stem}.npy", entry / f"{stem}.json"

    def _reuse_paths(self, key: Hashable, line_size: int) -> tuple[Path, Path]:
        # Keyed by line granularity only — capacity-independent by design.
        stem = f"reuse-{llc_digest(('reuse', int(line_size)))}"
        entry = self.entry_dir(key)
        return entry / f"{stem}.npy", entry / f"{stem}.json"

    # ------------------------------------------------------------------
    # traces
    # ------------------------------------------------------------------
    def has_trace(self, key: Hashable) -> bool:
        """Whether a committed trace entry exists (manifest present)."""
        return (self.entry_dir(key) / TRACE_MANIFEST).exists()

    def save_trace(self, key: Hashable, trace: AccessTrace) -> bool:
        """Persist a trace (no-op when the entry already exists)."""
        entry = self.entry_dir(key)
        if (entry / TRACE_MANIFEST).exists():
            return False
        flat = np.ascontiguousarray(trace.all_addresses(), dtype=np.int64)
        manifest = {
            "format": FORMAT_VERSION,
            "key": repr(key),
            "total": int(flat.size),
            "crc32": _crc32(flat),
            "phases": trace.phase_records(),
        }
        try:
            with span("store.save_trace", cat="store", entry=entry.name):
                entry.mkdir(parents=True, exist_ok=True)
                self._commit_array(
                    entry / TRACE_ARRAY, flat, tag=f"{entry.name}/trace"
                )
                self._commit_json(entry / TRACE_MANIFEST, manifest)
        except OSError:
            return False  # a full/read-only disk degrades to no caching
        self.stats.trace_saves += 1
        process_metrics().inc("store.trace_saves")
        enforce_cache_budget(protect={entry})
        return True

    def load_trace(self, key: Hashable) -> AccessTrace | None:
        """The stored trace as zero-copy mmap views, or ``None``."""
        entry = self.entry_dir(key)
        manifest_path = entry / TRACE_MANIFEST
        manifest = self._read_json(manifest_path)
        if manifest is None:
            return None
        with span("store.load_trace", cat="store", entry=entry.name):
            if manifest.get("format") != FORMAT_VERSION:
                return self._reject_entry(key, "format version mismatch")
            flat = self._load_array(
                entry / TRACE_ARRAY,
                dtype=np.int64,
                shape=(int(manifest.get("total", -1)),),
                crc32=manifest.get("crc32"),
            )
            if flat is None:
                return self._reject_entry(key, "trace array failed validation")
            try:
                trace = AccessTrace.from_columnar(flat, manifest.get("phases", []))
            except (KeyError, ValueError, TypeError, TraceError) as exc:
                # Any malformed phase table means the entry cannot be trusted.
                return self._reject_entry(key, f"bad phase table: {exc}")
        self.stats.trace_loads += 1
        process_metrics().inc("store.trace_loads")
        touch_entry(entry)
        return trace

    # ------------------------------------------------------------------
    # hit masks
    # ------------------------------------------------------------------
    def has_mask(self, key: Hashable, llc_sig: tuple) -> bool:
        return self._mask_paths(key, llc_sig)[1].exists()

    def save_mask(
        self, key: Hashable, llc_sig: tuple, mask: np.ndarray
    ) -> bool:
        """Persist one LLC geometry's hit mask for a stored trace.

        Masks are bit-packed (``np.packbits``) before hitting disk — 8x
        smaller than raw bool — and the sidecar records the unpacked
        length so loads can trim the pad bits.  The CRC covers the
        *packed* bytes (what is actually on disk).
        """
        array_path, sidecar_path = self._mask_paths(key, llc_sig)
        if sidecar_path.exists():
            return False
        mask = np.ascontiguousarray(mask, dtype=np.bool_)
        packed = np.packbits(mask)
        sidecar = {
            "format": FORMAT_VERSION,
            "mask_format": MASK_FORMAT,
            "llc": list(llc_sig),
            "n": int(mask.size),
            "crc32": _crc32(packed),
        }
        try:
            array_path.parent.mkdir(parents=True, exist_ok=True)
            self._commit_array(
                array_path, packed, tag=f"{array_path.parent.name}/mask"
            )
            self._commit_json(sidecar_path, sidecar)
        except OSError:
            return False
        self.stats.mask_saves += 1
        process_metrics().inc("store.mask_saves")
        enforce_cache_budget(protect={array_path.parent})
        return True

    def load_mask(
        self, key: Hashable, llc_sig: tuple, expected_len: int
    ) -> np.ndarray | None:
        """The stored hit mask (unpacked, read-only), or ``None``.

        A sidecar without the current ``mask_format`` stamp — an
        unpacked pre-packing entry — fails validation like any other
        stale artifact and is rebuilt by the caller.
        """
        array_path, sidecar_path = self._mask_paths(key, llc_sig)
        sidecar = self._read_json(sidecar_path)
        if sidecar is None:
            return None
        if (
            sidecar.get("format") != FORMAT_VERSION
            or sidecar.get("mask_format") != MASK_FORMAT
            or sidecar.get("llc") != list(llc_sig)
            or int(sidecar.get("n", -1)) != expected_len
        ):
            return self._reject_files(array_path, sidecar_path, "mask")
        packed = self._load_array(
            array_path,
            dtype=np.uint8,
            shape=((expected_len + 7) // 8,),
            crc32=sidecar.get("crc32"),
        )
        if packed is None:
            return self._reject_files(array_path, sidecar_path, "mask")
        mask = np.unpackbits(np.asarray(packed), count=expected_len).view(np.bool_)
        mask.flags.writeable = False
        self.stats.mask_loads += 1
        process_metrics().inc("store.mask_loads")
        touch_entry(array_path.parent)
        return mask

    # ------------------------------------------------------------------
    # compiled profiles
    # ------------------------------------------------------------------
    def has_profile(self, key: Hashable, llc_sig: tuple) -> bool:
        return self._profile_paths(key, llc_sig)[1].exists()

    def save_profile(
        self, key: Hashable, llc_sig: tuple, profile: TraceProfile
    ) -> bool:
        """Persist one LLC geometry's compiled miss profile.

        The CSR pages/counts pair lands as one stacked ``int64 [2, nnz]``
        array (mmap-shareable like traces and masks); the per-phase
        metadata rides in the JSON sidecar together with the array CRC.
        """
        array_path, sidecar_path = self._profile_paths(key, llc_sig)
        if sidecar_path.exists():
            return False
        stacked, record = profile_to_columnar(profile)
        sidecar = {
            "format": FORMAT_VERSION,
            "llc": list(llc_sig),
            "crc32": _crc32(stacked),
            **record,
        }
        try:
            array_path.parent.mkdir(parents=True, exist_ok=True)
            self._commit_array(
                array_path, stacked, tag=f"{array_path.parent.name}/profile"
            )
            self._commit_json(sidecar_path, sidecar)
        except OSError:
            return False
        self.stats.profile_saves += 1
        process_metrics().inc("store.profile_saves")
        enforce_cache_budget(protect={array_path.parent})
        return True

    def load_profile(
        self,
        key: Hashable,
        llc_sig: tuple,
        *,
        expected_phases: int,
        expected_accesses: int,
    ) -> TraceProfile | None:
        """The stored profile (CSR arrays as mmap views), or ``None``.

        ``expected_phases``/``expected_accesses`` come from the trace the
        caller is about to price; a stored profile describing a different
        trace shape is stale and rejected like any corrupt entry.
        """
        array_path, sidecar_path = self._profile_paths(key, llc_sig)
        sidecar = self._read_json(sidecar_path)
        if sidecar is None:
            return None
        if (
            sidecar.get("format") != FORMAT_VERSION
            or sidecar.get("llc") != list(llc_sig)
        ):
            return self._reject_files(array_path, sidecar_path, "profile")
        try:
            nnz = int(sidecar.get("nnz", -1))
        except (TypeError, ValueError):
            return self._reject_files(array_path, sidecar_path, "profile")
        if nnz < 0:
            return self._reject_files(array_path, sidecar_path, "profile")
        stacked = self._load_array(
            array_path,
            dtype=np.int64,
            shape=(2, nnz),
            crc32=sidecar.get("crc32"),
        )
        if stacked is None:
            return self._reject_files(array_path, sidecar_path, "profile")
        try:
            profile = profile_from_columnar(stacked, sidecar)
        except TraceError:
            return self._reject_files(array_path, sidecar_path, "profile")
        if (
            profile.n_phases != expected_phases
            or profile.total_accesses != expected_accesses
        ):
            return self._reject_files(array_path, sidecar_path, "profile")
        self.stats.profile_loads += 1
        process_metrics().inc("store.profile_loads")
        touch_entry(array_path.parent)
        return profile

    # ------------------------------------------------------------------
    # reuse profiles
    # ------------------------------------------------------------------
    def has_reuse(self, key: Hashable, line_size: int) -> bool:
        return self._reuse_paths(key, line_size)[1].exists()

    def save_reuse(
        self, key: Hashable, line_size: int, profile: ReuseProfile
    ) -> bool:
        """Persist one trace's compiled reuse profile.

        Artifact v2: the gap rows (int64 bit patterns) and the
        pre-computed window curve land as one ``float64 [4, n + 1]``
        array (see :func:`repro.sim.reusepack.reuse_to_columnar`,
        mmap-shareable like traces); the line granularity, length and
        ``reuse_format`` stamp ride in the JSON sidecar together with
        the array CRC.  One entry per (trace, line size) serves every
        LLC capacity, with zero per-process float work at load.
        """
        array_path, sidecar_path = self._reuse_paths(key, line_size)
        if sidecar_path.exists():
            return False
        stacked, record = reuse_to_columnar(profile)
        sidecar = {
            "format": FORMAT_VERSION,
            "crc32": _crc32(stacked),
            **record,
        }
        try:
            array_path.parent.mkdir(parents=True, exist_ok=True)
            self._commit_array(
                array_path, stacked, tag=f"{array_path.parent.name}/reuse"
            )
            self._commit_json(sidecar_path, sidecar)
        except OSError:
            return False
        self.stats.reuse_saves += 1
        process_metrics().inc("store.reuse_saves")
        enforce_cache_budget(protect={array_path.parent})
        return True

    def load_reuse(
        self, key: Hashable, line_size: int, expected_len: int
    ) -> ReuseProfile | None:
        """The stored reuse profile (gap rows as mmap views), or ``None``.

        ``expected_len`` is the access count of the trace the caller is
        about to derive masks for; a profile of a different length is
        stale and rejected like any corrupt entry.  So is a pre-curve v1
        entry (``reuse_format`` below :data:`~repro.sim.reusepack.
        REUSE_FORMAT`, or the old ``int64 [2, n]`` array shape) — v1 is
        rebuilt, never migrated.
        """
        array_path, sidecar_path = self._reuse_paths(key, line_size)
        sidecar = self._read_json(sidecar_path)
        if sidecar is None:
            return None
        try:
            stale = (
                sidecar.get("format") != FORMAT_VERSION
                or int(sidecar.get("reuse_format", -1)) != REUSE_FORMAT
                or int(sidecar.get("line_size", -1)) != int(line_size)
                or int(sidecar.get("n", -1)) != expected_len
            )
        except (TypeError, ValueError):
            stale = True
        if stale:
            return self._reject_files(array_path, sidecar_path, "reuse")
        stacked = self._load_array(
            array_path,
            dtype=np.float64,
            shape=(4, expected_len + 1),
            crc32=sidecar.get("crc32"),
        )
        if stacked is None:
            return self._reject_files(array_path, sidecar_path, "reuse")
        try:
            profile = reuse_from_columnar(stacked, sidecar)
        except TraceError:
            return self._reject_files(array_path, sidecar_path, "reuse")
        self.stats.reuse_loads += 1
        process_metrics().inc("store.reuse_loads")
        touch_entry(array_path.parent)
        return profile

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _commit_array(self, path: Path, array: np.ndarray, *, tag: str) -> None:
        """Atomic tempfile+rename commit of one ``.npy`` array.

        The ``cache.store_torn`` fault truncates the temp file before the
        rename — committing a torn array under an intact manifest, the
        exact state a crashed non-atomic writer (or a lost flush) leaves
        behind and the load-side CRC guard must reject.
        """
        global _TMP_SEQ
        _TMP_SEQ += 1
        tmp = path.parent / f".{path.name}.{os.getpid()}.{_TMP_SEQ}.tmp"
        with open(tmp, "wb") as handle:
            np.save(handle, array)
        if fault_point(SITE_STORE_TORN, tag=tag, detail=str(path)) is not None:
            size = tmp.stat().st_size
            with open(tmp, "r+b") as handle:
                handle.truncate(max(1, size // 2))
        os.replace(tmp, path)

    def _commit_json(self, path: Path, payload: dict) -> None:
        global _TMP_SEQ
        _TMP_SEQ += 1
        tmp = path.parent / f".{path.name}.{os.getpid()}.{_TMP_SEQ}.tmp"
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

    def _read_json(self, path: Path) -> dict | None:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def _load_array(
        self, path: Path, *, dtype, shape: tuple, crc32
    ) -> np.ndarray | None:
        """mmap one array file; validate shape/dtype/CRC (once per process)."""
        try:
            array = np.load(path, mmap_mode="r")
        except (OSError, ValueError, EOFError):
            return None
        if array.dtype != dtype or array.shape != tuple(shape):
            return None
        if path not in self._verified:
            if not isinstance(crc32, int) or _crc32(array) != crc32:
                return None
            self._verified.add(path)
        return array

    def _reject_entry(self, key: Hashable, reason: str) -> None:
        """Drop a whole entry that failed validation; caller recomputes."""
        self.stats.rejects += 1
        process_metrics().inc("store.rejects")
        entry = self.entry_dir(key)
        emit("store.reject", reason, source="store", entry=entry.name)
        self._verified = {p for p in self._verified if p.parent != entry}
        shutil.rmtree(entry, ignore_errors=True)
        return None

    def _reject_files(
        self, array_path: Path, sidecar_path: Path, what: str
    ) -> None:
        """Drop one per-LLC artifact (mask/profile) pair; caller rebuilds."""
        self.stats.rejects += 1
        process_metrics().inc("store.rejects")
        emit(
            "store.reject",
            f"{what} failed validation",
            source="store",
            entry=array_path.parent.name,
        )
        for path in (sidecar_path, array_path):
            self._verified.discard(path)
            try:
                path.unlink()
            except OSError:
                continue
        return None


# ----------------------------------------------------------------------
# process-wide store handle
# ----------------------------------------------------------------------
_PROCESS_STORE: TraceStore | None = None
_PROCESS_ROOT: Path | None = None


def process_trace_store() -> TraceStore | None:
    """The per-process store bound to ``REPRO_TRACE_STORE`` (or ``None``).

    Re-resolved when the environment variable changes, so tests and the
    CLI can re-point the store mid-process.
    """
    global _PROCESS_STORE, _PROCESS_ROOT
    root = store_root()
    if root is None:
        _PROCESS_STORE = None
        _PROCESS_ROOT = None
        return None
    if _PROCESS_STORE is None or _PROCESS_ROOT != root:
        _PROCESS_STORE = TraceStore(root)
        _PROCESS_ROOT = root
    return _PROCESS_STORE
