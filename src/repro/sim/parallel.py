"""Parallel experiment engine: process-pool fan-out of experiment cells.

The paper's evaluation is a large grid — apps x datasets x placements,
plus parameter sweeps — and every cell is *independent*: it builds its own
simulated memory system, registers a fresh application, and reports its
own result.  This module fans those cells out across worker processes:

- :class:`AppSpec` — a picklable, callable recipe for an application
  (app name, dataset name, scale, constructor kwargs).  It satisfies the
  ``app_factory`` contract of :mod:`repro.sim.experiment`, so the same
  object drives serial and parallel runs.
- :class:`JobSpec` — one experiment cell: an app spec, a platform, a flow
  (``static`` / ``atmem`` / ``coarse`` / ``cell`` / ``multitenant``), and
  the cell's knobs.  Specs are frozen, hashable, and picklable.
- :class:`ExperimentPool` — runs a batch of specs on a
  ``ProcessPoolExecutor``, collecting results in submission order.  A
  worker failure surfaces as :class:`ExperimentJobError` with the failing
  spec attached.  ``max_workers=1`` (or a pool that cannot start) falls
  back to in-process serial execution of the *same* job path.

The pool is **self-healing**: each job gets a wall-clock budget
(``REPRO_JOB_TIMEOUT`` seconds; unset disables) and a bounded retry
budget (``REPRO_JOB_RETRIES``, default 2) with exponential backoff
(``REPRO_JOB_BACKOFF`` base seconds).  A job that crashes is retried; a
worker that dies outright (``BrokenProcessPool``) or hangs past the
timeout gets the whole pool killed and re-created, with every unfinished
job resubmitted at the next attempt number.  Attempt numbers feed the
:mod:`repro.faults` job context, so chaos faults gated on ``max_attempt``
fire exactly once and the retried batch converges to fault-free results
(jobs re-seed their RNG from spec content, so a rerun is bit-identical).
:class:`PoolHealth` on the pool records timeouts, crashes, retries, and
pool restarts for post-run inspection.

Determinism: every job runs :func:`execute_job`, which seeds NumPy's
global RNG from the spec's content hash before executing, and all model
randomness (sampling profiler, dataset generators) is already locally
seeded.  Workers share no mutable state — each process keeps its own
memoised datasets and :class:`repro.sim.tracecache.TraceCache` — so a
parallel grid is bit-identical to a serial one (see
``tests/test_sim_parallel.py``).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import traceback
import zlib
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.config import PlatformConfig
from repro.core.runtime import RuntimeConfig
from repro.errors import ConfigurationError, ReproError
from repro.faults.injector import (
    InjectedWorkerCrash,
    fault_point,
    is_injected,
    job_context,
)
from repro.faults.plan import SITE_POOL_CRASH, SITE_POOL_EXIT, SITE_POOL_HANG
from repro.sim.experiment import (
    AtMemRunResult,
    StaticRunResult,
    run_atmem,
    run_coarse_grained,
    run_static,
)
from repro.sim.tracecache import TraceCache, process_trace_cache

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"

#: Per-job wall-clock budget in seconds (unset / <= 0 disables).
JOB_TIMEOUT_ENV = "REPRO_JOB_TIMEOUT"

#: Retries per failed / timed-out job (default 2).
JOB_RETRIES_ENV = "REPRO_JOB_RETRIES"

#: Base seconds of the exponential retry backoff (default 0.05).
JOB_BACKOFF_ENV = "REPRO_JOB_BACKOFF"

#: How long an injected ``pool.hang`` sleeps when the spec has no param.
DEFAULT_HANG_SECONDS = 30.0

#: Environment variable overriding where wall-clock timings are recorded.
PARALLEL_JSON_ENV = "REPRO_PARALLEL_JSON"

#: Default timing-record file (relative to the current directory).
PARALLEL_JSON_DEFAULT = "BENCH_parallel.json"

FLOWS = ("static", "atmem", "coarse", "cell", "multitenant")


def resolve_jobs(jobs: int | None = None) -> int:
    """The effective worker count: explicit arg, else ``REPRO_JOBS``, else 1."""
    if jobs is not None:
        return max(1, int(jobs))
    raw = os.environ.get(JOBS_ENV)
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            raise ConfigurationError(
                f"{JOBS_ENV} must be an integer, got {raw!r}"
            ) from None
    return 1


# ----------------------------------------------------------------------
# specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AppSpec:
    """Picklable application recipe; calling it instantiates the app.

    Datasets are resolved by name in whatever process the spec is called
    in (memoised per process by :mod:`repro.graph.datasets`), so shipping
    an ``AppSpec`` to a worker costs a few hundred bytes, not a graph.
    """

    app: str
    dataset: str
    scale: int = 1024
    kwargs: tuple[tuple[str, Any], ...] = ()
    dataset_seed: int = 7

    @classmethod
    def make(
        cls, app: str, dataset: str, *, scale: int = 1024, dataset_seed: int = 7, **kwargs
    ) -> "AppSpec":
        """Build a spec from plain constructor kwargs."""
        return cls(
            app=app,
            dataset=dataset,
            scale=scale,
            dataset_seed=dataset_seed,
            kwargs=tuple(sorted(kwargs.items())),
        )

    def __call__(self):
        from repro.apps import make_app
        from repro.graph.datasets import dataset_by_name

        graph = dataset_by_name(self.dataset, scale=self.scale, seed=self.dataset_seed)
        return make_app(self.app, graph, **dict(self.kwargs))


@dataclass(frozen=True)
class JobSpec:
    """One experiment cell, fully described by picklable values.

    ``flow`` selects the experiment:

    - ``"static"`` — :func:`repro.sim.experiment.run_static` under
      ``placement``;
    - ``"atmem"`` — the full ATMem flow with ``runtime_config``;
    - ``"coarse"`` — the whole-object baseline;
    - ``"cell"`` — one overall-grid cell: baseline (all-slow), reference
      (``placement``), and ATMem, sharing one trace-cache entry;
    - ``"multitenant"`` — a shared-host scenario over ``tenants``.

    ``value`` and ``tag`` are caller bookkeeping (sweep coordinate, series
    label) carried through untouched.
    """

    app: AppSpec | None
    platform: PlatformConfig
    flow: str = "atmem"
    placement: str = "slow"
    runtime_config: RuntimeConfig | None = None
    count_tlb: bool = False
    value: float | None = None
    seed: int | None = None
    tag: str = ""
    tenants: tuple[tuple[str, AppSpec], ...] = ()

    def __post_init__(self) -> None:
        if self.flow not in FLOWS:
            raise ConfigurationError(
                f"unknown flow {self.flow!r}; expected one of {FLOWS}"
            )
        if self.flow == "multitenant":
            if not self.tenants:
                raise ConfigurationError("multitenant flow requires tenants")
        elif self.app is None:
            raise ConfigurationError(f"flow {self.flow!r} requires an app spec")

    def trace_key(self) -> tuple:
        """Content key of the app's deterministic access trace."""
        app = self.app
        if app is None:
            return ("multitenant", self.tenants)
        return (app.app, app.dataset, app.scale, app.kwargs, app.dataset_seed)

    def job_seed(self) -> int:
        """Deterministic per-job seed, independent of scheduling order."""
        if self.seed is not None:
            return self.seed
        blob = repr(
            (
                self.trace_key(),
                self.platform.name,
                self.flow,
                self.placement,
                self.runtime_config,
                self.count_tlb,
                self.value,
                self.tag,
            )
        ).encode()
        return zlib.crc32(blob)


@dataclass
class CellResult:
    """Baseline / reference / ATMem triple for one overall-grid cell."""

    baseline: StaticRunResult
    reference: StaticRunResult
    atmem: AtMemRunResult

    @property
    def speedup(self) -> float:
        """ATMem speedup over the all-slow baseline."""
        return self.baseline.seconds / self.atmem.seconds

    @property
    def slowdown_vs_reference(self) -> float:
        """ATMem time relative to the reference placement."""
        return self.atmem.seconds / self.reference.seconds


class ExperimentJobError(ReproError):
    """A worker failed; carries the failing spec and the worker traceback."""

    def __init__(self, spec: JobSpec, kind: str, message: str, worker_tb: str = "") -> None:
        self.spec = spec
        self.kind = kind
        self.worker_traceback = worker_tb
        super().__init__(f"experiment job failed ({kind}: {message}) for spec {spec!r}")


# ----------------------------------------------------------------------
# job execution (shared by workers and the serial fallback)
# ----------------------------------------------------------------------
def execute_job(spec: JobSpec, *, trace_cache: TraceCache | None = None):
    """Run one job in the current process.

    Seeds the global NumPy RNG from the spec content first, so any code
    that (incorrectly) reaches for global randomness still behaves
    identically regardless of which worker runs the job or in what order.
    """
    np.random.seed(spec.job_seed() & 0x7FFFFFFF)
    cache = process_trace_cache() if trace_cache is None else trace_cache
    key = spec.trace_key()
    if spec.flow == "static":
        return run_static(
            spec.app,
            spec.platform,
            spec.placement,
            count_tlb=spec.count_tlb,
            trace_cache=cache,
            trace_key=key,
        )
    if spec.flow == "atmem":
        return run_atmem(
            spec.app,
            spec.platform,
            runtime_config=spec.runtime_config,
            count_tlb=spec.count_tlb,
            trace_cache=cache,
            trace_key=key,
        )
    if spec.flow == "coarse":
        return run_coarse_grained(
            spec.app, spec.platform, trace_cache=cache, trace_key=key
        )
    if spec.flow == "cell":
        return CellResult(
            baseline=run_static(
                spec.app, spec.platform, "slow",
                count_tlb=spec.count_tlb, trace_cache=cache, trace_key=key,
            ),
            reference=run_static(
                spec.app, spec.platform, spec.placement,
                count_tlb=spec.count_tlb, trace_cache=cache, trace_key=key,
            ),
            atmem=run_atmem(
                spec.app, spec.platform,
                runtime_config=spec.runtime_config,
                count_tlb=spec.count_tlb, trace_cache=cache, trace_key=key,
            ),
        )
    # multitenant: imported lazily to avoid a module cycle.
    from repro.sim.multitenant import MultiTenantHost

    host = MultiTenantHost(
        spec.platform, runtime_config=spec.runtime_config or RuntimeConfig()
    )
    for name, app_spec in spec.tenants:
        host.admit(name, app_spec)
    return host.run()


def job_timeout() -> float | None:
    """Per-job wall-clock budget from ``REPRO_JOB_TIMEOUT`` (``None``: off)."""
    raw = os.environ.get(JOB_TIMEOUT_ENV)
    if raw is None or raw == "":
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{JOB_TIMEOUT_ENV} must be a number of seconds, got {raw!r}"
        ) from None
    return value if value > 0 else None


def job_retries() -> int:
    """Retries per failed job from ``REPRO_JOB_RETRIES`` (default 2)."""
    raw = os.environ.get(JOB_RETRIES_ENV)
    if raw is None or raw == "":
        return 2
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{JOB_RETRIES_ENV} must be an integer, got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigurationError(f"{JOB_RETRIES_ENV} must be >= 0, got {value}")
    return value


def job_backoff() -> float:
    """Base seconds of the retry backoff from ``REPRO_JOB_BACKOFF``."""
    raw = os.environ.get(JOB_BACKOFF_ENV)
    if raw is None or raw == "":
        return 0.05
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{JOB_BACKOFF_ENV} must be a number of seconds, got {raw!r}"
        ) from None
    return max(0.0, value)


@dataclass
class PoolHealth:
    """What it took to finish the batch: every recovery, counted."""

    timeouts: int = 0
    crashes: int = 0
    retries: int = 0
    pool_restarts: int = 0
    serial_fallbacks: int = 0
    notes: list[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        self.notes.append(message)

    @property
    def clean(self) -> bool:
        """True when the batch needed no recovery at all."""
        return (
            self.timeouts == 0
            and self.crashes == 0
            and self.retries == 0
            and self.pool_restarts == 0
        )

    def as_dict(self) -> dict:
        return {
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "retries": self.retries,
            "pool_restarts": self.pool_restarts,
            "serial_fallbacks": self.serial_fallbacks,
            "notes": list(self.notes),
        }


@dataclass
class _Job:
    """Parent-side tracking record for one spec in flight."""

    spec: JobSpec
    index: int
    attempt: int = 0


def _pool_entry(spec: JobSpec, attempt: int = 0):
    """Worker-side wrapper: never lets an exception cross unpickled.

    ``attempt`` is the parent-tracked retry number; it scopes the
    :mod:`repro.faults` job context so ``max_attempt``-gated pool faults
    disarm on retry even though a fresh worker process has fresh firing
    counters.  The three pool sites model the three worker pathologies:
    an exception (``pool.crash``), sudden death (``pool.exit`` —
    ``os._exit``, which the parent sees as ``BrokenProcessPool``), and a
    hang (``pool.hang`` — sleeps ``param`` seconds, which the parent's
    job timeout must catch).
    """
    try:
        with job_context(attempt=attempt, tag=spec.tag):
            fired = fault_point(SITE_POOL_EXIT, tag=spec.tag, detail="worker exit")
            if fired is not None:
                os._exit(int(fired.param) if fired.param else 17)
            fired = fault_point(SITE_POOL_HANG, tag=spec.tag, detail="worker hang")
            if fired is not None:
                time.sleep(fired.param if fired.param else DEFAULT_HANG_SECONDS)
            fired = fault_point(SITE_POOL_CRASH, tag=spec.tag, detail="worker crash")
            if fired is not None:
                raise InjectedWorkerCrash(
                    f"injected crash in job {spec.tag or spec.flow!r} "
                    f"(attempt {attempt})"
                )
            return ("ok", execute_job(spec))
    except Exception as exc:  # noqa: BLE001 — re-raised with spec in parent
        return ("err", type(exc).__name__, str(exc), traceback.format_exc())


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------
class ExperimentPool:
    """Fan a batch of :class:`JobSpec` out across worker processes.

    Results come back in submission order.  With ``max_workers=1``, a
    single-spec batch, or a pool that fails to start (sandboxed
    environments, missing semaphores), execution degrades to an in-process
    serial loop over the *same* :func:`execute_job` path, so results are
    identical either way.

    Recovery, in escalating order:

    - a job whose worker returns an ``err`` payload is resubmitted up to
      ``REPRO_JOB_RETRIES`` times with exponential backoff;
    - a job that exceeds ``REPRO_JOB_TIMEOUT`` or whose worker dies
      (``BrokenProcessPool``) gets the executor killed and re-created,
      with *every* unfinished job resubmitted one attempt later — the
      attempt bump is what bounds crash rounds, because chaos faults
      gate on ``max_attempt`` in the parent-tracked attempt number;
    - a pool that cannot be restarted (restart budget exhausted or the
      host refuses new pools) falls back to the serial path for whatever
      is still unfinished.

    Jobs are side-effect free and content-seeded, so a retried or
    serially-rerun job is bit-identical to its first try.  The tally of
    recoveries lands in :attr:`health`.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = resolve_jobs(max_workers)
        #: Filled after each :meth:`run`: how the batch actually executed.
        self.last_mode: str = "unstarted"
        #: Recovery tally of the last :meth:`run`.
        self.health = PoolHealth()

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[JobSpec]) -> list:
        """Execute every spec; return their results in order."""
        specs = list(specs)
        self.health = PoolHealth()
        if not specs:
            self.last_mode = "empty"
            return []
        jobs = [_Job(spec=spec, index=i) for i, spec in enumerate(specs)]
        results: list = [None] * len(specs)
        done = [False] * len(specs)
        workers = min(self.max_workers, len(specs))
        if workers > 1:
            self._run_parallel(jobs, results, done, workers)
        self._run_serial(jobs, results, done)
        return results

    # ------------------------------------------------------------------
    def _run_parallel(
        self, jobs: list[_Job], results: list, done: list[bool], workers: int
    ) -> None:
        """Drive the executor until every job finishes or the pool gives up.

        Leaves unfinished jobs for the serial path instead of raising on
        pool-level failures; only a job that exhausts its own retry
        budget raises.
        """
        timeout = job_timeout()
        retries = job_retries()
        max_restarts = retries + 2
        try:
            executor = self._make_executor(workers)
        except (OSError, ValueError, PermissionError):
            return
        self.last_mode = f"parallel[{workers}]"
        try:
            while not all(done):
                pending = [job for job in jobs if not done[job.index]]
                futures = {
                    executor.submit(_pool_entry, job.spec, job.attempt): job
                    for job in pending
                }
                failure = None
                for future, job in futures.items():
                    try:
                        payload = future.result(timeout=timeout)
                    except FutureTimeoutError:
                        self.health.timeouts += 1
                        self.health.note(
                            f"job {job.index} exceeded {timeout}s "
                            f"(attempt {job.attempt}); restarting pool"
                        )
                        failure = "timeout"
                        break
                    except BrokenProcessPool:
                        self.health.crashes += 1
                        self.health.note(
                            f"worker died on job {job.index} "
                            f"(attempt {job.attempt}); restarting pool"
                        )
                        failure = "crash"
                        break
                    self._settle(job, payload, results, done, retries)
                if failure is None:
                    continue
                self._harvest(futures, results, done, retries)
                self._kill_executor(executor)
                for job in jobs:
                    if not done[job.index]:
                        job.attempt += 1
                        if job.attempt > retries:
                            raise ExperimentJobError(
                                job.spec,
                                failure,
                                f"job still unfinished after "
                                f"{retries} retries ({failure})",
                            )
                self.health.pool_restarts += 1
                if self.health.pool_restarts > max_restarts:
                    self.health.note(
                        "pool restart budget exhausted; "
                        "finishing remaining jobs serially"
                    )
                    return
                try:
                    executor = self._make_executor(workers)
                except (OSError, ValueError, PermissionError):
                    self.health.note(
                        "pool could not be restarted; "
                        "finishing remaining jobs serially"
                    )
                    return
        finally:
            self._kill_executor(executor)

    def _settle(
        self, job: _Job, payload: tuple, results: list, done: list[bool], retries: int
    ) -> None:
        """Apply one worker payload: record the result or schedule a retry."""
        if payload[0] == "ok":
            results[job.index] = payload[1]
            done[job.index] = True
            return
        _, kind, message, worker_tb = payload
        job.attempt += 1
        if job.attempt > retries:
            raise ExperimentJobError(job.spec, kind, message, worker_tb)
        self.health.retries += 1
        self.health.note(
            f"job {job.index} failed ({kind}); retrying as attempt {job.attempt}"
        )
        self._backoff(job.attempt)

    def _harvest(
        self, futures: dict, results: list, done: list[bool], retries: int
    ) -> None:
        """Collect whatever finished before a pool failure: work not wasted."""
        for future, job in futures.items():
            if done[job.index] or not future.done():
                continue
            try:
                payload = future.result(timeout=0)
            except (BrokenProcessPool, CancelledError, FutureTimeoutError):
                continue
            self._settle(job, payload, results, done, retries)

    def _run_serial(self, jobs: list[_Job], results: list, done: list[bool]) -> None:
        """In-process execution of whatever is unfinished, with retries."""
        pending = [job for job in jobs if not done[job.index]]
        if not pending:
            return
        if self.last_mode.startswith("parallel"):
            self.health.serial_fallbacks += 1
        self.last_mode = "serial"
        timeout = job_timeout()
        retries = job_retries()
        for job in pending:
            while True:
                try:
                    results[job.index] = self._serial_attempt(job, timeout)
                    done[job.index] = True
                    break
                except Exception as exc:  # noqa: BLE001 — bounded retry below
                    job.attempt += 1
                    if job.attempt > retries:
                        raise ExperimentJobError(
                            job.spec, type(exc).__name__, str(exc),
                            traceback.format_exc(),
                        ) from exc
                    self.health.retries += 1
                    if is_injected(exc):
                        self.health.crashes += 1
                    self.health.note(
                        f"job {job.index} failed serially "
                        f"({type(exc).__name__}); retrying as attempt {job.attempt}"
                    )
                    self._backoff(job.attempt)

    def _serial_attempt(self, job: _Job, timeout: float | None):
        """One in-process try, with the pool fault sites mapped to raises.

        There is no separate process to kill here, so ``pool.exit``
        degrades to a crash and ``pool.hang`` to a (bounded) stall that
        is then *detected*: the method sleeps at most the job timeout and
        raises, which is exactly what the parent-side watchdog does to a
        hung worker.
        """
        spec = job.spec
        with job_context(attempt=job.attempt, tag=spec.tag):
            fired = fault_point(
                SITE_POOL_EXIT, tag=spec.tag, detail="worker exit (serial)"
            ) or fault_point(SITE_POOL_CRASH, tag=spec.tag, detail="worker crash")
            if fired is not None:
                raise InjectedWorkerCrash(
                    f"injected crash in job {spec.tag or spec.flow!r} "
                    f"(serial, attempt {job.attempt})"
                )
            fired = fault_point(SITE_POOL_HANG, tag=spec.tag, detail="worker hang")
            if fired is not None:
                stall = fired.param if fired.param else DEFAULT_HANG_SECONDS
                if timeout:
                    time.sleep(min(stall, timeout))
                self.health.timeouts += 1
                raise InjectedWorkerCrash(
                    f"injected hang in job {spec.tag or spec.flow!r} detected "
                    f"(serial, attempt {job.attempt})"
                )
            return execute_job(spec)

    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> None:
        base = job_backoff()
        if base > 0:
            time.sleep(min(2.0, base * (2 ** max(0, attempt - 1))))

    @staticmethod
    def _make_executor(workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers, mp_context=ExperimentPool._mp_context()
        )

    @staticmethod
    def _kill_executor(executor: ProcessPoolExecutor) -> None:
        """Tear an executor down even if its workers are hung or dead."""
        processes = list((getattr(executor, "_processes", None) or {}).values())
        for process in processes:
            try:
                process.kill()
            except (OSError, ValueError, AttributeError):
                pass
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except (OSError, RuntimeError):
            pass

    @staticmethod
    def _mp_context():
        # fork shares the parent's memoised datasets copy-on-write, which
        # avoids regenerating graphs per worker; fall back to the platform
        # default where fork is unavailable.
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_jobs(specs: Sequence[JobSpec], jobs: int | None = None) -> list:
    """One-shot convenience: ``ExperimentPool(jobs).run(specs)``."""
    return ExperimentPool(jobs).run(specs)


# ----------------------------------------------------------------------
# wall-clock bookkeeping
# ----------------------------------------------------------------------
def parallel_json_path(path: str | Path | None = None) -> Path | None:
    """Where harness wall-clock timings are recorded (``None``: disabled).

    Recording is armed by an explicit path or by ``REPRO_PARALLEL_JSON``
    (the benchmark harness and ``repro reproduce --jobs`` arm it); plain
    unit-test runs leave no timing files behind.
    """
    if path is not None:
        return Path(path)
    env = os.environ.get(PARALLEL_JSON_ENV)
    return Path(env) if env else None


def record_parallel_timing(entry: dict, path: str | Path | None = None) -> Path | None:
    """Append one timing record to ``BENCH_parallel.json`` (best effort).

    The file holds a JSON list of records ``{"benchmark", "jobs", "cells",
    "wall_seconds", ...}`` so speedups are measured, not asserted.
    """
    target = parallel_json_path(path)
    if target is None:
        return None
    records: list = []
    if target.exists():
        try:
            existing = json.loads(target.read_text(encoding="utf-8"))
            if isinstance(existing, list):
                records = existing
        except (OSError, json.JSONDecodeError):
            records = []
    records.append(entry)
    try:
        target.write_text(json.dumps(records, indent=2) + "\n", encoding="utf-8")
    except OSError:
        pass
    return target
