"""Parallel experiment engine: process-pool fan-out of experiment cells.

The paper's evaluation is a large grid — apps x datasets x placements,
plus parameter sweeps — and every cell is *independent*: it builds its own
simulated memory system, registers a fresh application, and reports its
own result.  This module fans those cells out across worker processes:

- :class:`AppSpec` — a picklable, callable recipe for an application
  (app name, dataset name, scale, constructor kwargs).  It satisfies the
  ``app_factory`` contract of :mod:`repro.sim.experiment`, so the same
  object drives serial and parallel runs.
- :class:`JobSpec` — one experiment cell: an app spec, a platform, a flow
  (``static`` / ``atmem`` / ``coarse`` / ``cell`` / ``multitenant``), and
  the cell's knobs.  Specs are frozen, hashable, and picklable.
- :class:`ExperimentPool` — runs a batch of specs on a
  ``ProcessPoolExecutor``, collecting results in submission order.  A
  worker failure surfaces as :class:`ExperimentJobError` with the failing
  spec attached.  ``max_workers=1`` (or a pool that cannot start) falls
  back to in-process serial execution of the *same* job path.

The pool is **self-healing**: each job gets a wall-clock budget
(``REPRO_JOB_TIMEOUT`` seconds; unset disables) and a bounded retry
budget (``REPRO_JOB_RETRIES``, default 2) with exponential backoff
(``REPRO_JOB_BACKOFF`` base seconds).  A job that crashes is retried; a
worker that dies outright (``BrokenProcessPool``) or hangs past the
timeout gets the whole pool killed and re-created, with every unfinished
job resubmitted at the next attempt number.  Attempt numbers feed the
:mod:`repro.faults` job context, so chaos faults gated on ``max_attempt``
fire exactly once and the retried batch converges to fault-free results
(jobs re-seed their RNG from spec content, so a rerun is bit-identical).
:class:`PoolHealth` on the pool records timeouts, crashes, retries, and
pool restarts for post-run inspection.

The pool is **cache-aware**: before fanning out it derives a dispatch
plan from the jobs' trace keys and the persistent trace store
(:mod:`repro.sim.tracestore`).  Store-cold keys go through the **cold
pipeline** first: each key is decomposed into a *trace* stage (build the
raw trace and land it in the store) and a *fold* stage (load it back as
a shared mmap and derive the reuse / mask / profile artifacts), chained
completion-driven so a key's fold starts the moment its trace lands and
its cells dispatch store-warm right after.  Cold-stage concurrency is
**admission-clamped** to the machine (``REPRO_POOL_CPUS``, default the
CPU count) and to the worker memory budget (``REPRO_WORKER_BYTES`` over
the largest projected trace); when the clamp admits a single lane the
parent primes keys in-process instead of paying fork and store
round-trips for serialised work.  The warm remainder then fans out
longest-expected-first.  ``REPRO_POOL_SCHEDULE=fifo`` restores plain
submission order.  The parent also pre-builds every referenced dataset
and publishes its CSR arrays as read-only shared-memory segments
(:mod:`repro.graph.shm`), released in a ``finally`` even when workers
crash.  Per-job cache telemetry (cold / warm / warm-from-store), the
admission decision, and peak worker RSS land in :class:`PoolHealth` and
the ``BENCH_parallel.json`` records.

Determinism: every job runs :func:`execute_job`, which seeds NumPy's
global RNG from the spec's content hash before executing, and all model
randomness (sampling profiler, dataset generators) is already locally
seeded.  Workers share no *mutable* state — each process keeps its own
memoised datasets and :class:`repro.sim.tracecache.TraceCache`, and the
shared store/segments hold immutable content-keyed artifacts — so a
parallel grid is bit-identical to a serial one regardless of dispatch
order (results are indexed by submission order; see
``tests/test_sim_parallel.py``).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import time
import traceback
import zlib
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.config import PlatformConfig
from repro.core.runtime import RuntimeConfig
from repro.errors import ConfigurationError, ReproError
from repro.faults.injector import (
    InjectedWorkerCrash,
    fault_point,
    is_injected,
    job_context,
)
from repro.faults.plan import SITE_POOL_CRASH, SITE_POOL_EXIT, SITE_POOL_HANG
from repro.graph import shm as graph_shm
from repro.mem.trace import worker_byte_budget
from repro.obs import absorb_all, drain_all, reset_all
from repro.obs.bus import Event, process_bus
from repro.obs.context import SpanContext
from repro.obs.metrics import process_metrics
from repro.obs.tracer import (
    append_jsonl,
    process_tracer,
    sidecar_path,
    span,
    trace_path,
)
from repro.sim.experiment import (
    AtMemRunResult,
    StaticRunResult,
    run_atmem,
    run_coarse_grained,
    run_static,
)
from repro.sim.tracecache import TraceCache, process_trace_cache
from repro.sim.tracestore import process_trace_store

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"

#: Per-job wall-clock budget in seconds (unset / <= 0 disables).
JOB_TIMEOUT_ENV = "REPRO_JOB_TIMEOUT"

#: Retries per failed / timed-out job (default 2).
JOB_RETRIES_ENV = "REPRO_JOB_RETRIES"

#: Base seconds of the exponential retry backoff (default 0.05).
JOB_BACKOFF_ENV = "REPRO_JOB_BACKOFF"

#: How long an injected ``pool.hang`` sleeps when the spec has no param.
DEFAULT_HANG_SECONDS = 30.0

#: Dispatch policy: ``cache`` (default, primer waves + longest-first)
#: or ``fifo`` (plain submission order).
SCHEDULE_ENV = "REPRO_POOL_SCHEDULE"

#: CPU count the cold-admission clamp believes in (default: the machine's).
#: Overridable so tests can exercise the multicore staged DAG on one core
#: and the bench harness can pin a reproducible width.
POOL_CPUS_ENV = "REPRO_POOL_CPUS"

#: Environment variable overriding where wall-clock timings are recorded.
PARALLEL_JSON_ENV = "REPRO_PARALLEL_JSON"

#: Default timing-record file (relative to the current directory).
PARALLEL_JSON_DEFAULT = "BENCH_parallel.json"

FLOWS = ("static", "atmem", "coarse", "cell", "multitenant")


def resolve_jobs(jobs: int | None = None) -> int:
    """The effective worker count: explicit arg, else ``REPRO_JOBS``, else 1."""
    if jobs is not None:
        return max(1, int(jobs))
    raw = os.environ.get(JOBS_ENV)
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            raise ConfigurationError(
                f"{JOBS_ENV} must be an integer, got {raw!r}"
            ) from None
    return 1


def pool_schedule() -> str:
    """The dispatch policy from ``REPRO_POOL_SCHEDULE`` (default ``cache``)."""
    raw = os.environ.get(SCHEDULE_ENV, "").strip().lower()
    if raw in ("", "cache"):
        return "cache"
    if raw == "fifo":
        return "fifo"
    raise ConfigurationError(
        f"{SCHEDULE_ENV} must be 'cache' or 'fifo', got {raw!r}"
    )


def pool_cpus() -> int:
    """How many CPUs cold stages may assume (``REPRO_POOL_CPUS`` override).

    Worker *count* is a user choice; cold-stage *concurrency* is an
    admission decision — priming jobs are CPU- and memory-bound, so
    running more of them than there are cores only adds contention.
    """
    raw = os.environ.get(POOL_CPUS_ENV)
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{POOL_CPUS_ENV} must be an integer, got {raw!r}"
            ) from None
        if value > 0:
            return value
        raise ConfigurationError(f"{POOL_CPUS_ENV} must be >= 1, got {value}")
    return os.cpu_count() or 1


# ----------------------------------------------------------------------
# specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AppSpec:
    """Picklable application recipe; calling it instantiates the app.

    Datasets are resolved by name in whatever process the spec is called
    in (memoised per process by :mod:`repro.graph.datasets`), so shipping
    an ``AppSpec`` to a worker costs a few hundred bytes, not a graph.
    """

    app: str
    dataset: str
    scale: int = 1024
    kwargs: tuple[tuple[str, Any], ...] = ()
    dataset_seed: int = 7

    @classmethod
    def make(
        cls, app: str, dataset: str, *, scale: int = 1024, dataset_seed: int = 7, **kwargs
    ) -> "AppSpec":
        """Build a spec from plain constructor kwargs."""
        return cls(
            app=app,
            dataset=dataset,
            scale=scale,
            dataset_seed=dataset_seed,
            kwargs=tuple(sorted(kwargs.items())),
        )

    def trace_key(self) -> tuple:
        """Content key of this app's deterministic access trace."""
        return (self.app, self.dataset, self.scale, self.kwargs, self.dataset_seed)

    def to_json(self) -> dict:
        """JSON-safe form for journals; inverse of :meth:`from_json`.

        ``kwargs`` values must themselves be JSON-representable scalars
        (they are, for every app the registry ships); tuples inside
        kwargs would come back as lists and change the trace key.
        """
        return {
            "app": self.app,
            "dataset": self.dataset,
            "scale": self.scale,
            "kwargs": [[k, v] for k, v in self.kwargs],
            "dataset_seed": self.dataset_seed,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "AppSpec":
        """Rebuild a spec from :meth:`to_json` output (bit-identical key)."""
        return cls(
            app=str(payload["app"]),
            dataset=str(payload["dataset"]),
            scale=int(payload["scale"]),
            kwargs=tuple((str(k), v) for k, v in payload.get("kwargs", [])),
            dataset_seed=int(payload.get("dataset_seed", 7)),
        )

    def expected_cost(self) -> float:
        """Relative cold cost of tracing this app (bigger graph = costlier)."""
        from repro.graph.datasets import PAPER_SIZES

        _, paper_edges = PAPER_SIZES.get(self.dataset, (0, 30_000_000))
        return paper_edges / max(1, self.scale)

    def __call__(self):
        from repro.apps import make_app
        from repro.graph.datasets import dataset_by_name

        graph = dataset_by_name(self.dataset, scale=self.scale, seed=self.dataset_seed)
        return make_app(self.app, graph, **dict(self.kwargs))


@dataclass(frozen=True)
class JobSpec:
    """One experiment cell, fully described by picklable values.

    ``flow`` selects the experiment:

    - ``"static"`` — :func:`repro.sim.experiment.run_static` under
      ``placement``;
    - ``"atmem"`` — the full ATMem flow with ``runtime_config``;
    - ``"coarse"`` — the whole-object baseline;
    - ``"cell"`` — one overall-grid cell: baseline (all-slow), reference
      (``placement``), and ATMem, sharing one trace-cache entry;
    - ``"multitenant"`` — a shared-host scenario over ``tenants``.

    ``value`` and ``tag`` are caller bookkeeping (sweep coordinate, series
    label) carried through untouched.
    """

    app: AppSpec | None
    platform: PlatformConfig
    flow: str = "atmem"
    placement: str = "slow"
    runtime_config: RuntimeConfig | None = None
    count_tlb: bool = False
    value: float | None = None
    seed: int | None = None
    tag: str = ""
    tenants: tuple[tuple[str, AppSpec], ...] = ()

    def __post_init__(self) -> None:
        if self.flow not in FLOWS:
            raise ConfigurationError(
                f"unknown flow {self.flow!r}; expected one of {FLOWS}"
            )
        if self.flow == "multitenant":
            if not self.tenants:
                raise ConfigurationError("multitenant flow requires tenants")
        elif self.app is None:
            raise ConfigurationError(f"flow {self.flow!r} requires an app spec")

    def trace_key(self) -> tuple:
        """Content key of the app's deterministic access trace."""
        app = self.app
        if app is None:
            return ("multitenant", self.tenants)
        return app.trace_key()

    def dataset_keys(self) -> set[tuple[str, int, int]]:
        """Every ``(dataset, scale, seed)`` this job resolves."""
        apps = [self.app] if self.app is not None else []
        apps.extend(app for _, app in self.tenants)
        return {(app.dataset, app.scale, app.dataset_seed) for app in apps}

    def expected_cost(self) -> float:
        """Relative wall-clock estimate used to order dispatch.

        Flows re-run the traced app a different number of times: a
        ``cell`` is three full runs (baseline / reference / ATMem), the
        single flows roughly two (profile + measure), multitenant two per
        tenant.  Only the *ordering* matters, so crude weights suffice.
        """
        weight = {"cell": 3.0, "static": 2.0, "atmem": 2.0, "coarse": 2.0}
        if self.flow == "multitenant":
            return sum(app.expected_cost() * 2.0 for _, app in self.tenants)
        return (self.app.expected_cost() if self.app else 1.0) * weight.get(
            self.flow, 2.0
        )

    def job_seed(self) -> int:
        """Deterministic per-job seed, independent of scheduling order."""
        if self.seed is not None:
            return self.seed
        blob = repr(
            (
                self.trace_key(),
                self.platform.name,
                self.flow,
                self.placement,
                self.runtime_config,
                self.count_tlb,
                self.value,
                self.tag,
            )
        ).encode()
        return zlib.crc32(blob)


@dataclass
class CellResult:
    """Baseline / reference / ATMem triple for one overall-grid cell."""

    baseline: StaticRunResult
    reference: StaticRunResult
    atmem: AtMemRunResult

    @property
    def speedup(self) -> float:
        """ATMem speedup over the all-slow baseline."""
        return self.baseline.seconds / self.atmem.seconds

    @property
    def slowdown_vs_reference(self) -> float:
        """ATMem time relative to the reference placement."""
        return self.atmem.seconds / self.reference.seconds


class ExperimentJobError(ReproError):
    """A worker failed; carries the failing spec and the worker traceback."""

    def __init__(self, spec: JobSpec, kind: str, message: str, worker_tb: str = "") -> None:
        self.spec = spec
        self.kind = kind
        self.worker_traceback = worker_tb
        super().__init__(f"experiment job failed ({kind}: {message}) for spec {spec!r}")


# ----------------------------------------------------------------------
# job execution (shared by workers and the serial fallback)
# ----------------------------------------------------------------------
def execute_job(spec: JobSpec, *, trace_cache: TraceCache | None = None):
    """Run one job in the current process.

    Seeds the global NumPy RNG from the spec content first, so any code
    that (incorrectly) reaches for global randomness still behaves
    identically regardless of which worker runs the job or in what order.
    """
    np.random.seed(spec.job_seed() & 0x7FFFFFFF)
    cache = process_trace_cache() if trace_cache is None else trace_cache
    key = spec.trace_key()
    if spec.flow == "static":
        return run_static(
            spec.app,
            spec.platform,
            spec.placement,
            count_tlb=spec.count_tlb,
            trace_cache=cache,
            trace_key=key,
        )
    if spec.flow == "atmem":
        return run_atmem(
            spec.app,
            spec.platform,
            runtime_config=spec.runtime_config,
            count_tlb=spec.count_tlb,
            trace_cache=cache,
            trace_key=key,
        )
    if spec.flow == "coarse":
        return run_coarse_grained(
            spec.app, spec.platform, trace_cache=cache, trace_key=key
        )
    if spec.flow == "cell":
        return CellResult(
            baseline=run_static(
                spec.app, spec.platform, "slow",
                count_tlb=spec.count_tlb, trace_cache=cache, trace_key=key,
            ),
            reference=run_static(
                spec.app, spec.platform, spec.placement,
                count_tlb=spec.count_tlb, trace_cache=cache, trace_key=key,
            ),
            atmem=run_atmem(
                spec.app, spec.platform,
                runtime_config=spec.runtime_config,
                count_tlb=spec.count_tlb, trace_cache=cache, trace_key=key,
            ),
        )
    # multitenant: imported lazily to avoid a module cycle.
    from repro.sim.multitenant import MultiTenantHost

    host = MultiTenantHost(
        spec.platform,
        runtime_config=spec.runtime_config or RuntimeConfig(),
        trace_cache=cache,
    )
    for name, app_spec in spec.tenants:
        host.admit(name, app_spec)
    return host.run()


def job_timeout() -> float | None:
    """Per-job wall-clock budget from ``REPRO_JOB_TIMEOUT`` (``None``: off)."""
    raw = os.environ.get(JOB_TIMEOUT_ENV)
    if raw is None or raw == "":
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{JOB_TIMEOUT_ENV} must be a number of seconds, got {raw!r}"
        ) from None
    return value if value > 0 else None


def job_retries() -> int:
    """Retries per failed job from ``REPRO_JOB_RETRIES`` (default 2)."""
    raw = os.environ.get(JOB_RETRIES_ENV)
    if raw is None or raw == "":
        return 2
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{JOB_RETRIES_ENV} must be an integer, got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigurationError(f"{JOB_RETRIES_ENV} must be >= 0, got {value}")
    return value


def job_backoff() -> float:
    """Base seconds of the retry backoff from ``REPRO_JOB_BACKOFF``."""
    raw = os.environ.get(JOB_BACKOFF_ENV)
    if raw is None or raw == "":
        return 0.05
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{JOB_BACKOFF_ENV} must be a number of seconds, got {raw!r}"
        ) from None
    return max(0.0, value)


@dataclass
class PoolHealth:
    """What it took to finish the batch: every recovery, counted."""

    timeouts: int = 0
    crashes: int = 0
    retries: int = 0
    pool_restarts: int = 0
    serial_fallbacks: int = 0
    #: Jobs that had to build a trace or simulate an LLC mask themselves.
    cold_jobs: int = 0
    #: Jobs served entirely from in-memory cache entries.
    warm_jobs: int = 0
    #: Jobs that loaded at least one artifact from the persistent store.
    store_jobs: int = 0
    #: Store-cold trace keys the dispatch plan had to prime.
    cold_keys: int = 0
    #: Cold-stage concurrency after the admission clamp (0: no cold plan).
    cold_admitted: int = 0
    #: Peak worker RSS in bytes reported by any worker this run (0: none
    #: reported — serial runs, or a platform without ``getrusage``).
    max_worker_rss_bytes: int = 0
    notes: list[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        self.notes.append(message)

    @property
    def clean(self) -> bool:
        """True when the batch needed no recovery at all."""
        return (
            self.timeouts == 0
            and self.crashes == 0
            and self.retries == 0
            and self.pool_restarts == 0
        )

    def as_dict(self) -> dict:
        return {
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "retries": self.retries,
            "pool_restarts": self.pool_restarts,
            "serial_fallbacks": self.serial_fallbacks,
            "cold_jobs": self.cold_jobs,
            "warm_jobs": self.warm_jobs,
            "store_jobs": self.store_jobs,
            "cold_keys": self.cold_keys,
            "cold_admitted": self.cold_admitted,
            "max_worker_rss_bytes": self.max_worker_rss_bytes,
            "notes": list(self.notes),
        }

    def tally_cache_use(self, kind: str | None) -> None:
        """Count one finished job's cache behaviour (``None``: unknown)."""
        if kind == "cold":
            self.cold_jobs += 1
        elif kind == "store":
            self.store_jobs += 1
        elif kind == "warm":
            self.warm_jobs += 1


@dataclass
class _Job:
    """Parent-side tracking record for one spec in flight."""

    spec: JobSpec
    index: int
    attempt: int = 0


def _cache_snapshot() -> tuple[int, int, int, int]:
    """The process cache counters that classify a job's cache behaviour."""
    stats = process_trace_cache().stats
    return (
        stats.trace_misses,
        stats.store_trace_hits,
        stats.mask_misses,
        stats.store_mask_hits,
    )


def _classify_cache_use(
    before: tuple[int, int, int, int], after: tuple[int, int, int, int]
) -> str:
    """``cold`` built something, ``store`` loaded from disk, else ``warm``.

    A trace build is a ``trace_misses`` increment *not* matched by a
    ``store_trace_hits`` increment (same for masks), per the counting in
    :class:`repro.sim.tracecache.TraceCache`.
    """
    d_miss, d_store_t, d_mask_miss, d_store_m = (
        a - b for a, b in zip(after, before)
    )
    built = (d_miss - d_store_t) + (d_mask_miss - d_store_m)
    if built > 0:
        return "cold"
    if d_store_t > 0 or d_store_m > 0:
        return "store"
    return "warm"


def _flush_worker_sidecar(blob: dict) -> None:
    """Persist a worker's drained spans to its per-pid sidecar file.

    The payload blob is the primary channel home, but a worker killed
    after the job (or a parent that dies before absorbing) loses it —
    the sidecar survives on disk and ``repro trace --merge`` folds it
    back in, deduplicating against whatever the blob delivered.
    """
    spans = blob.get("spans") if blob else None
    if not spans:
        return
    primary = trace_path()
    if primary is None:
        return
    try:
        append_jsonl(sidecar_path(primary), spans)
    except OSError as exc:
        process_bus().emit(
            "pool.note", f"span sidecar write failed: {exc}", source="pool"
        )


def _pool_entry(spec: JobSpec, attempt: int = 0, ctx: dict | None = None):
    """Worker-side wrapper: never lets an exception cross unpickled.

    ``attempt`` is the parent-tracked retry number; it scopes the
    :mod:`repro.faults` job context so ``max_attempt``-gated pool faults
    disarm on retry even though a fresh worker process has fresh firing
    counters.  The three pool sites model the three worker pathologies:
    an exception (``pool.crash``), sudden death (``pool.exit`` —
    ``os._exit``, which the parent sees as ``BrokenProcessPool``), and a
    hang (``pool.hang`` — sleeps ``param`` seconds, which the parent's
    job timeout must catch).

    Observability contract: the worker's obs state is **reset at entry**
    (fork-inherited parent buffers must not double-ship) and **drained at
    exit** into the payload's final element — events, metric deltas, and
    spans — which the parent absorbs in ``_settle``.  The ``ok`` payload
    also carries the job's cache-use classification (cold / store / warm)
    as both a tuple element and a buffered ``pool.cache_use`` event, so
    parent-side health accounting comes from worker-buffered events
    rather than parent mutation.

    ``ctx`` is the submitting span's context dict (when tracing is on):
    activated on the fresh tracer, it re-parents every span this job
    opens under the parent-side ``pool.submit`` instant, so the merged
    export renders one causal tree per figure cell across the fork.
    """
    reset_all()
    if ctx is not None:
        process_tracer().activate(SpanContext.from_dict(ctx))
    try:
        with job_context(attempt=attempt, tag=spec.tag):
            fired = fault_point(SITE_POOL_EXIT, tag=spec.tag, detail="worker exit")
            if fired is not None:
                os._exit(int(fired.param) if fired.param else 17)
            fired = fault_point(SITE_POOL_HANG, tag=spec.tag, detail="worker hang")
            if fired is not None:
                time.sleep(fired.param if fired.param else DEFAULT_HANG_SECONDS)
            fired = fault_point(SITE_POOL_CRASH, tag=spec.tag, detail="worker crash")
            if fired is not None:
                raise InjectedWorkerCrash(
                    f"injected crash in job {spec.tag or spec.flow!r} "
                    f"(attempt {attempt})"
                )
            before = _cache_snapshot()
            with span(
                "pool.job",
                cat="pool",
                tag=spec.tag or spec.flow,
                attempt=attempt,
            ):
                result = execute_job(spec)
            kind = _classify_cache_use(before, _cache_snapshot())
            process_bus().emit(
                "pool.cache_use", kind, source="pool", tag=spec.tag
            )
            process_metrics().inc(f"pool.{kind}_jobs")
            _emit_worker_rss()
            blob = drain_all()
            _flush_worker_sidecar(blob)
            return ("ok", result, kind, blob)
    except Exception as exc:  # noqa: BLE001 — re-raised with spec in parent
        blob = drain_all()
        _flush_worker_sidecar(blob)
        return (
            "err", type(exc).__name__, str(exc), traceback.format_exc(),
            blob,
        )


def _submission_ctx(job: "_Job") -> dict | None:
    """Mint and record the causal context for one job submission.

    Records a ``pool.submit`` instant (a child of whatever span is
    active — the dispatch span on the parallel path) and returns its
    context as a picklable dict for :func:`_pool_entry` to activate.
    ``None`` when tracing is off, so nothing extra crosses the fork.
    """
    tracer = process_tracer()
    if not tracer.enabled:
        return None
    ctx = tracer.submission(
        "pool.submit",
        cat="pool",
        tag=job.spec.tag or job.spec.flow,
        index=job.index,
        attempt=job.attempt,
    )
    return ctx.as_dict() if ctx is not None else None


# ----------------------------------------------------------------------
# cold-path priming stages
# ----------------------------------------------------------------------
def _emit_worker_rss() -> None:
    """Buffer this process's peak RSS for the parent's health accounting.

    The amount rides the obs blob home as a ``pool.worker_rss`` event and
    max-folds into :attr:`PoolHealth.max_worker_rss_bytes` — the evidence
    behind the bench-row claim that chunked streaming folds keep workers
    under ``REPRO_WORKER_BYTES``.  ``ru_maxrss`` is kilobytes on Linux
    and bytes on macOS.
    """
    try:
        import resource
    except ImportError:
        return
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    scale = 1 if sys.platform == "darwin" else 1024
    process_bus().emit(
        "pool.worker_rss",
        source="pool",
        amount=float(rss) * scale,
    )


def _registered_app(spec: JobSpec):
    """The spec's app, registered on a throwaway runtime, plus its system.

    ``run_once`` requires registration first (virtual addresses are
    assigned in registration order).  Placement does not affect trace
    content — addresses are virtual — so priming registers everything on
    the slow tier like the baseline flow does.
    """
    from repro.core.runtime import AtMemRuntime

    system = spec.platform.build_system()
    runtime = AtMemRuntime(system, platform=spec.platform)
    runtime.default_tier = system.slow_tier
    app = spec.app()
    app.register(runtime)
    return app, system


def _stage_build_trace(
    spec: JobSpec, cache: TraceCache | None = None, *, handoff: bool = True
) -> None:
    """DAG stage 1: build one cold key's trace and land it in the store.

    With ``handoff`` (the DAG default) the explicit ``save_trace`` is
    coordination, not economics: the fold stage may run in a different
    worker, so the trace must be on disk whatever the adaptive write
    policy would have chosen.  (``TraceStore.save_*`` are unconditional;
    the policy lives in the cache's save gates.)  The single-lane serial
    primer passes ``handoff=False`` — build and fold share one cache, so
    persisting the raw trace is pure warm-start economics and is left to
    the policy inside ``cache.trace`` (skipping a multi-GB write the
    workers can rebuild in milliseconds is exactly its job).
    """
    cache = process_trace_cache() if cache is None else cache
    key = spec.trace_key()
    app, _ = _registered_app(spec)
    trace = cache.trace(key, app.run_once)
    store = cache.store
    if handoff and store is not None and not store.has_trace(key):
        store.save_trace(key, trace)


def _stage_fold_artifacts(spec: JobSpec, cache: TraceCache | None = None) -> None:
    """DAG stage 2: derive one cold key's fold artifacts from its trace.

    Loads the trace back (a shared mmap when stage 1 persisted it in this
    store, a rebuild otherwise) and folds the reuse profile, LLC hit
    mask, and page miss profile through the cache, which persists each
    one under the adaptive write policy.  After this stage the key's
    cells dispatch store-warm.
    """
    cache = process_trace_cache() if cache is None else cache
    key = spec.trace_key()

    def builder():
        app, _ = _registered_app(spec)
        return app.run_once()

    system = spec.platform.build_system()
    trace = cache.trace(key, builder)
    hits = cache.hit_mask(key, system.llc, trace)
    cache.profile(key, system.llc, trace, hits)


def prime_artifacts(spec: JobSpec, cache: TraceCache | None = None) -> None:
    """Build one spec's full artifact lattice in the current process.

    Equivalent to running both DAG stages back to back; the single-lane
    cold path uses it to prime keys in-parent before fanning cells out.
    Both stages share ``cache``, so no store handoff is forced — the
    adaptive write policy decides which artifacts are worth persisting.
    """
    _stage_build_trace(spec, cache, handoff=False)
    _stage_fold_artifacts(spec, cache)


def _stage_entry(
    stage: str, spec: JobSpec, attempt: int = 0, ctx: dict | None = None
):
    """Worker-side wrapper for one priming stage (mirrors ``_pool_entry``).

    Same obs contract — reset at entry, drain into the payload — and the
    same never-raise rule, but no pool fault sites: priming is best
    effort, so a failed stage is reported and *not* retried (the key's
    cells rebuild whatever is missing).
    """
    reset_all()
    if ctx is not None:
        process_tracer().activate(SpanContext.from_dict(ctx))
    try:
        with job_context(attempt=attempt, tag=spec.tag):
            with span(
                "pool.stage",
                cat="pool",
                stage=stage,
                tag=spec.tag or spec.flow,
                attempt=attempt,
            ):
                if stage == "trace":
                    _stage_build_trace(spec)
                else:
                    _stage_fold_artifacts(spec)
            _emit_worker_rss()
            blob = drain_all()
            _flush_worker_sidecar(blob)
            return ("ok", None, None, blob)
    except Exception as exc:  # noqa: BLE001 — reported best-effort in parent
        blob = drain_all()
        _flush_worker_sidecar(blob)
        return (
            "err", type(exc).__name__, str(exc), traceback.format_exc(),
            blob,
        )


@dataclass
class _ColdPlan:
    """Store-cold keys to prime, and how wide the cold stages may run."""

    #: One representative (heaviest) job per store-cold trace key.
    jobs_by_key: dict
    #: Projected peak resident bytes of the largest single priming job.
    projected_bytes: int
    #: Cold-stage concurrency after the admission clamp.
    admitted: int


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------
class ExperimentPool:
    """Fan a batch of :class:`JobSpec` out across worker processes.

    Results come back in submission order.  With ``max_workers=1``, a
    single-spec batch, or a pool that fails to start (sandboxed
    environments, missing semaphores), execution degrades to an in-process
    serial loop over the *same* :func:`execute_job` path, so results are
    identical either way.

    Recovery, in escalating order:

    - a job whose worker returns an ``err`` payload is resubmitted up to
      ``REPRO_JOB_RETRIES`` times with exponential backoff;
    - a job that exceeds ``REPRO_JOB_TIMEOUT`` or whose worker dies
      (``BrokenProcessPool``) gets the executor killed and re-created,
      with *every* unfinished job resubmitted one attempt later — the
      attempt bump is what bounds crash rounds, because chaos faults
      gate on ``max_attempt`` in the parent-tracked attempt number;
    - a pool that cannot be restarted (restart budget exhausted or the
      host refuses new pools) falls back to the serial path for whatever
      is still unfinished.

    Jobs are side-effect free and content-seeded, so a retried or
    serially-rerun job is bit-identical to its first try.  The tally of
    recoveries lands in :attr:`health`.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = resolve_jobs(max_workers)
        #: Filled after each :meth:`run`: how the batch actually executed.
        self.last_mode: str = "unstarted"
        #: Recovery tally of the last :meth:`run`.
        self.health = PoolHealth()
        #: Names of the shm segments published for the last :meth:`run`
        #: (kept after release, so tests can assert they were unlinked).
        self.last_segments: list[str] = []
        self._executor: ProcessPoolExecutor | None = None
        #: Trace keys whose artifact lattice the cold pipeline completed
        #: this run.  Tracked separately from ``store.has_trace`` because
        #: the adaptive write policy may prime a key without persisting
        #: its raw trace.
        self._primed_keys: set = set()

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[JobSpec]) -> list:
        """Execute every spec; return their results in order."""
        specs = list(specs)
        self.health = PoolHealth()
        self.last_segments = []
        self._primed_keys = set()
        if not specs:
            self.last_mode = "empty"
            return []
        jobs = [_Job(spec=spec, index=i) for i, spec in enumerate(specs)]
        results: list = [None] * len(specs)
        done = [False] * len(specs)
        workers = min(self.max_workers, len(specs))
        # Health accounting is event-driven: recoveries and cache
        # classifications — parent-detected or worker-buffered — arrive
        # on the process bus and are tallied by one subscriber.
        unsubscribe = process_bus().subscribe(
            self._on_pool_event, prefix="pool."
        )
        published = None
        try:
            with span(
                "pool.dispatch", cat="pool", jobs=len(specs), workers=workers
            ):
                if workers > 1:
                    published = self._publish_graphs(specs)
                if workers > 1:
                    self._run_parallel(jobs, results, done, workers)
                self._run_serial(jobs, results, done)
        finally:
            unsubscribe()
            if published is not None:
                self.last_segments = published.segment_names
                graph_shm.release(published)
        return results

    def _on_pool_event(self, event: Event) -> None:
        """Fold one ``pool.*`` event into :attr:`health`.

        The same handler serves both halves of the cross-process
        contract: parent-detected failures (timeouts, dead workers) are
        emitted directly on the parent bus, and worker-buffered events
        arrive via :func:`repro.obs.absorb_all` in ``_settle``.
        """
        kind = event.kind
        if kind == "pool.cache_use":
            self.health.tally_cache_use(event.detail or None)
        elif kind == "pool.retry":
            self.health.retries += 1
            if event.detail:
                self.health.note(event.detail)
        elif kind == "pool.timeout":
            self.health.timeouts += 1
            if event.detail:
                self.health.note(event.detail)
        elif kind == "pool.crash":
            self.health.crashes += 1
            if event.detail:
                self.health.note(event.detail)
        elif kind == "pool.restart":
            self.health.pool_restarts += 1
        elif kind == "pool.serial_fallback":
            self.health.serial_fallbacks += 1
        elif kind == "pool.worker_rss":
            amount = int(event.amount)
            if amount > self.health.max_worker_rss_bytes:
                self.health.max_worker_rss_bytes = amount
        elif kind == "pool.note":
            self.health.note(event.detail)

    def _publish_graphs(self, specs: Sequence[JobSpec]):
        """Pre-build every referenced dataset into shared memory."""
        keys: set[tuple[str, int, int]] = set()
        for spec in specs:
            keys.update(spec.dataset_keys())
        return graph_shm.publish_datasets(keys)

    # ------------------------------------------------------------------
    def _run_parallel(
        self, jobs: list[_Job], results: list, done: list[bool], workers: int
    ) -> None:
        """Drive the executor until every job finishes or the pool gives up.

        Leaves unfinished jobs for the serial path instead of raising on
        pool-level failures; only a job that exhausts its own retry
        budget raises.
        """
        timeout = job_timeout()
        retries = job_retries()
        max_restarts = retries + 2
        plan = self._cold_plan(jobs, workers)
        if plan is not None and plan.admitted <= 1:
            # One admitted cold lane: a separate process would do the same
            # serial work with fork and store round-trips on top, so the
            # parent primes the keys directly — and because workers fork
            # from this process, the freshly calibrated write policy (and
            # the hottest cache entries) are inherited copy-on-write.
            self._prime_serially(plan)
        try:
            self._executor = self._make_executor(workers)
        except (OSError, ValueError, PermissionError):
            return
        self.last_mode = f"parallel[{workers}]"
        try:
            if plan is not None and plan.admitted > 1:
                if not self._drive_dag(plan, workers, timeout):
                    return
            for wave in self._dispatch_waves(jobs):
                if not self._drive_wave(
                    wave, results, done, workers, timeout, retries, max_restarts
                ):
                    return
        finally:
            if self._executor is not None:
                self._kill_executor(self._executor)
                self._executor = None

    def _cold_plan(self, jobs: list[_Job], workers: int) -> _ColdPlan | None:
        """Derive the cold pipeline's plan: which keys, and how wide.

        A key is *cold* when the store has no entry for it at all
        (:meth:`repro.sim.tracestore.TraceStore.has_entry`) — a key with
        any committed artifact was primed by an earlier run, and whatever
        the write policy left out is rebuild-cheap by construction.

        Cold stages hold a whole trace plus its fold state resident, so
        admitted concurrency is clamped to the machine (:func:`pool_cpus`)
        and to the worker memory budget (``REPRO_WORKER_BYTES`` over the
        largest projected trace).  The clamp governs only priming — cell
        dispatch keeps the full worker count, because warm cells stream
        artifacts from the store instead of materialising them.
        """
        if pool_schedule() == "fifo":
            return None
        store = process_trace_store()
        if store is None:
            return None
        ordered = sorted(jobs, key=lambda j: (-j.spec.expected_cost(), j.index))
        cold: dict = {}
        for job in ordered:
            spec = job.spec
            if spec.app is None:
                continue
            key = spec.trace_key()
            if key in cold or key in self._primed_keys or store.has_entry(key):
                continue
            cold[key] = job
        if not cold:
            return None
        # expected_cost() is paper-edges/scale; one edge is roughly eight
        # traced accesses of eight bytes each (validated against fig5:
        # cost 0.73M -> a 47 MB trace), so bytes ~= cost * 64.
        projected = max(
            int(job.spec.app.expected_cost() * 64) for job in cold.values()
        )
        budget = worker_byte_budget()
        by_budget = max(1, budget // max(1, projected))
        admitted = max(1, min(workers, pool_cpus(), by_budget, len(cold)))
        self.health.cold_keys = len(cold)
        self.health.cold_admitted = admitted
        process_bus().emit(
            "pool.note",
            f"cold plan: {len(cold)} store-cold key(s), admitted "
            f"{admitted} of {workers} worker(s) (cpus {pool_cpus()}, "
            f"~{max(1, projected >> 20)} MiB/key, "
            f"budget {budget >> 20} MiB)",
            source="pool",
        )
        return _ColdPlan(
            jobs_by_key=cold, projected_bytes=projected, admitted=admitted
        )

    def _prime_serially(self, plan: _ColdPlan) -> None:
        """Prime every cold key in-parent when admission allows one lane.

        Uses a throwaway single-entry cache so the parent's resident set
        stays one key deep — the artifacts' home is the store, and the
        point of the exercise is keeping peak RSS bounded.  Priming is
        best effort: a failed key is noted and left for its cells to
        rebuild.
        """
        cache = TraceCache(max_traces=1)
        with span("pool.prime_serial", cat="pool", keys=len(plan.jobs_by_key)):
            for key, job in plan.jobs_by_key.items():
                try:
                    prime_artifacts(job.spec, cache)
                except Exception as exc:  # noqa: BLE001 — best-effort priming
                    process_bus().emit(
                        "pool.note",
                        f"serial prime failed for job {job.index} "
                        f"({type(exc).__name__}: {exc}); cells will rebuild",
                        source="pool",
                    )
                    continue
                self._primed_keys.add(key)

    def _drive_dag(
        self, plan: _ColdPlan, workers: int, timeout: float | None
    ) -> bool:
        """Prime store-cold keys through the staged trace → fold DAG.

        Each key's trace stage builds and persists the raw trace; its
        fold stage is submitted the moment that trace lands
        (completion-driven, no cross-key barrier), loads it back as a
        shared mmap, and derives the reuse / mask / profile artifacts.
        In-flight stages are bounded by the admission clamp, not the
        worker count, and fold stages are submitted ahead of queued trace
        stages so finished keys free their memory early.

        Priming is *best effort*: a failed stage means only that the
        key's cells rebuild the artifacts themselves, so any pool-level
        failure (dead pool, stage timeout) abandons the remaining DAG
        rather than spending the wave machinery's retry budget.
        ``False`` means the executor could not be revived and the batch
        should fall back to the serial path.
        """
        queue: list[tuple[str, Any, _Job]] = [
            ("trace", key, job) for key, job in plan.jobs_by_key.items()
        ]
        pending: dict = {}
        with span(
            "pool.prime_dag",
            cat="pool",
            keys=len(plan.jobs_by_key),
            admitted=plan.admitted,
        ):
            while queue or pending:
                while queue and len(pending) < plan.admitted:
                    stage, key, job = queue.pop(0)
                    try:
                        future = self._executor.submit(
                            _stage_entry, stage, job.spec, job.attempt,
                            _submission_ctx(job),
                        )
                    except (RuntimeError, BrokenProcessPool):
                        return self._abandon_dag("stage submit failed", workers)
                    pending[future] = (stage, key, job)
                finished, _ = wait(
                    pending, timeout=timeout, return_when=FIRST_COMPLETED
                )
                if not finished:
                    return self._abandon_dag(
                        f"stage exceeded {timeout}s", workers
                    )
                for future in finished:
                    stage, key, job = pending.pop(future)
                    try:
                        payload = future.result(timeout=0)
                    except (BrokenProcessPool, CancelledError, OSError) as exc:
                        return self._abandon_dag(
                            f"pool died mid-stage ({type(exc).__name__})",
                            workers,
                        )
                    blob = payload[-1] if isinstance(payload[-1], dict) else None
                    if blob is not None:
                        absorb_all(blob)
                    if payload[0] != "ok":
                        process_bus().emit(
                            "pool.note",
                            f"prime stage {stage!r} failed for job "
                            f"{job.index} ({payload[1]}: {payload[2]}); "
                            "cells will rebuild",
                            source="pool",
                        )
                        continue
                    if stage == "trace":
                        queue.insert(0, ("fold", key, job))
                    else:
                        self._primed_keys.add(key)
        return True

    def _abandon_dag(self, reason: str, workers: int) -> bool:
        """Give up priming but keep the batch alive on a fresh executor."""
        process_bus().emit(
            "pool.note",
            f"cold priming abandoned ({reason}); cells will rebuild "
            "artifacts themselves",
            source="pool",
        )
        if self._executor is not None:
            self._kill_executor(self._executor)
            self._executor = None
        try:
            self._executor = self._make_executor(workers)
        except (OSError, ValueError, PermissionError):
            return False
        return True

    def _dispatch_waves(self, jobs: list[_Job]) -> list[list[_Job]]:
        """Split the batch into dispatch waves.

        Under the default ``cache`` schedule jobs go out
        longest-expected-first (so the critical path starts early), and
        when the persistent store is armed, a first wave runs exactly one
        *primer* job per store-cold trace key: siblings sharing that key
        then load the trace from the store instead of all recomputing it
        side by side.  ``fifo`` (or a trivial batch) is one wave in
        submission order.  Waves only order dispatch — results stay
        indexed by submission order and are bit-identical regardless.
        """
        if len(jobs) <= 1 or pool_schedule() == "fifo":
            return [jobs]
        ordered = sorted(jobs, key=lambda j: (-j.spec.expected_cost(), j.index))
        store = process_trace_store()
        if store is None:
            return [ordered]
        primers: list[_Job] = []
        rest: list[_Job] = []
        primed: set = set()
        for job in ordered:
            key = job.spec.trace_key()
            if (
                job.spec.app is None
                or key in primed
                or key in self._primed_keys
                or store.has_entry(key)
            ):
                rest.append(job)
                continue
            primed.add(key)
            primers.append(job)
        if not primers or not rest:
            return [ordered]
        process_bus().emit(
            "pool.note",
            f"priming store for {len(primers)} cold trace key(s) before fan-out",
            source="pool",
        )
        return [primers, rest]

    def _drive_wave(
        self,
        wave: list[_Job],
        results: list,
        done: list[bool],
        workers: int,
        timeout: float | None,
        retries: int,
        max_restarts: int,
    ) -> bool:
        """Run one wave to completion; ``False`` defers to the serial path."""
        while not all(done[job.index] for job in wave):
            pending = [job for job in wave if not done[job.index]]
            futures = {
                self._executor.submit(
                    _pool_entry, job.spec, job.attempt, _submission_ctx(job)
                ): job
                for job in pending
            }
            failure = None
            for future, job in futures.items():
                try:
                    payload = future.result(timeout=timeout)
                except FutureTimeoutError:
                    process_bus().emit(
                        "pool.timeout",
                        f"job {job.index} exceeded {timeout}s "
                        f"(attempt {job.attempt}); restarting pool",
                        amount=job.attempt,
                        source="pool",
                    )
                    process_metrics().inc("pool.timeouts")
                    failure = "timeout"
                    break
                except BrokenProcessPool:
                    process_bus().emit(
                        "pool.crash",
                        f"worker died on job {job.index} "
                        f"(attempt {job.attempt}); restarting pool",
                        amount=job.attempt,
                        source="pool",
                    )
                    process_metrics().inc("pool.crashes")
                    failure = "crash"
                    break
                self._settle(job, payload, results, done, retries)
            if failure is None:
                continue
            self._harvest(futures, results, done, retries)
            self._kill_executor(self._executor)
            self._executor = None
            for job in wave:
                if not done[job.index]:
                    job.attempt += 1
                    if job.attempt > retries:
                        raise ExperimentJobError(
                            job.spec,
                            failure,
                            f"job still unfinished after "
                            f"{retries} retries ({failure})",
                        )
            process_bus().emit("pool.restart", failure, source="pool")
            process_metrics().inc("pool.restarts")
            if self.health.pool_restarts > max_restarts:
                process_bus().emit(
                    "pool.note",
                    "pool restart budget exhausted; "
                    "finishing remaining jobs serially",
                    source="pool",
                )
                return False
            try:
                self._executor = self._make_executor(workers)
            except (OSError, ValueError, PermissionError):
                process_bus().emit(
                    "pool.note",
                    "pool could not be restarted; "
                    "finishing remaining jobs serially",
                    source="pool",
                )
                return False
        return True

    def _settle(
        self, job: _Job, payload: tuple, results: list, done: list[bool], retries: int
    ) -> None:
        """Apply one worker payload: record the result or schedule a retry.

        The payload's trailing obs blob (worker-buffered events, metric
        deltas, spans) is absorbed *first*, so the health subscriber sees
        the worker's ``pool.cache_use`` event and counters stay exact
        even when the same worker process served many jobs or died in
        between — each job drains its own delta at the worker side.
        """
        blob = payload[-1] if isinstance(payload[-1], dict) else None
        if blob is not None:
            absorb_all(blob)
        if payload[0] == "ok":
            results[job.index] = payload[1]
            done[job.index] = True
            if blob is None:
                # Legacy payload without an obs blob: classify directly.
                self.health.tally_cache_use(
                    payload[2] if len(payload) > 2 else None
                )
            return
        kind, message, worker_tb = payload[1], payload[2], payload[3]
        job.attempt += 1
        if job.attempt > retries:
            raise ExperimentJobError(job.spec, kind, message, worker_tb)
        process_bus().emit(
            "pool.retry",
            f"job {job.index} failed ({kind}); retrying as attempt {job.attempt}",
            amount=job.attempt,
            source="pool",
        )
        process_metrics().inc("pool.retries")
        self._backoff(job.attempt)

    def _harvest(
        self, futures: dict, results: list, done: list[bool], retries: int
    ) -> None:
        """Collect whatever finished before a pool failure: work not wasted."""
        for future, job in futures.items():
            if done[job.index] or not future.done():
                continue
            try:
                payload = future.result(timeout=0)
            except (BrokenProcessPool, CancelledError, FutureTimeoutError):
                continue
            self._settle(job, payload, results, done, retries)

    def _run_serial(self, jobs: list[_Job], results: list, done: list[bool]) -> None:
        """In-process execution of whatever is unfinished, with retries."""
        pending = [job for job in jobs if not done[job.index]]
        if not pending:
            return
        if self.last_mode.startswith("parallel"):
            process_bus().emit("pool.serial_fallback", source="pool")
            process_metrics().inc("pool.serial_fallbacks")
        self.last_mode = "serial"
        timeout = job_timeout()
        retries = job_retries()
        bus = process_bus()
        registry = process_metrics()
        for job in pending:
            while True:
                try:
                    before = _cache_snapshot()
                    results[job.index] = self._serial_attempt(job, timeout)
                    done[job.index] = True
                    kind = _classify_cache_use(before, _cache_snapshot())
                    bus.emit(
                        "pool.cache_use", kind, source="pool", tag=job.spec.tag
                    )
                    registry.inc(f"pool.{kind}_jobs")
                    break
                except Exception as exc:  # noqa: BLE001 — bounded retry below
                    job.attempt += 1
                    if job.attempt > retries:
                        raise ExperimentJobError(
                            job.spec, type(exc).__name__, str(exc),
                            traceback.format_exc(),
                        ) from exc
                    if is_injected(exc):
                        bus.emit(
                            "pool.crash",
                            f"job {job.index} crashed serially",
                            source="pool",
                        )
                        registry.inc("pool.crashes")
                    bus.emit(
                        "pool.retry",
                        f"job {job.index} failed serially "
                        f"({type(exc).__name__}); retrying as attempt {job.attempt}",
                        amount=job.attempt,
                        source="pool",
                    )
                    registry.inc("pool.retries")
                    self._backoff(job.attempt)

    def _serial_attempt(self, job: _Job, timeout: float | None):
        """One in-process try, with the pool fault sites mapped to raises.

        There is no separate process to kill here, so ``pool.exit``
        degrades to a crash and ``pool.hang`` to a (bounded) stall that
        is then *detected*: the method sleeps at most the job timeout and
        raises, which is exactly what the parent-side watchdog does to a
        hung worker.
        """
        spec = job.spec
        with job_context(attempt=job.attempt, tag=spec.tag):
            fired = fault_point(
                SITE_POOL_EXIT, tag=spec.tag, detail="worker exit (serial)"
            ) or fault_point(SITE_POOL_CRASH, tag=spec.tag, detail="worker crash")
            if fired is not None:
                raise InjectedWorkerCrash(
                    f"injected crash in job {spec.tag or spec.flow!r} "
                    f"(serial, attempt {job.attempt})"
                )
            fired = fault_point(SITE_POOL_HANG, tag=spec.tag, detail="worker hang")
            if fired is not None:
                stall = fired.param if fired.param else DEFAULT_HANG_SECONDS
                if timeout:
                    time.sleep(min(stall, timeout))
                process_bus().emit(
                    "pool.timeout",
                    f"injected hang detected serially (job {job.index})",
                    source="pool",
                )
                process_metrics().inc("pool.timeouts")
                raise InjectedWorkerCrash(
                    f"injected hang in job {spec.tag or spec.flow!r} detected "
                    f"(serial, attempt {job.attempt})"
                )
            tracer = process_tracer()
            ctx_dict = _submission_ctx(job)
            submit_ctx = (
                SpanContext.from_dict(ctx_dict) if ctx_dict is not None else None
            )
            with tracer.attach(submit_ctx):
                with span(
                    "pool.job",
                    cat="pool",
                    tag=spec.tag or spec.flow,
                    attempt=job.attempt,
                ):
                    return execute_job(spec)

    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> None:
        base = job_backoff()
        if base > 0:
            time.sleep(min(2.0, base * (2 ** max(0, attempt - 1))))

    @staticmethod
    def _make_executor(workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers, mp_context=ExperimentPool._mp_context()
        )

    @staticmethod
    def _kill_executor(executor: ProcessPoolExecutor) -> None:
        """Tear an executor down even if its workers are hung or dead."""
        processes = list((getattr(executor, "_processes", None) or {}).values())
        for process in processes:
            try:
                process.kill()
            except (OSError, ValueError, AttributeError):
                pass
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except (OSError, RuntimeError):
            pass

    @staticmethod
    def _mp_context():
        # fork shares the parent's memoised datasets copy-on-write, which
        # avoids regenerating graphs per worker; fall back to the platform
        # default where fork is unavailable.
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_jobs(specs: Sequence[JobSpec], jobs: int | None = None) -> list:
    """One-shot convenience: ``ExperimentPool(jobs).run(specs)``."""
    return ExperimentPool(jobs).run(specs)


# ----------------------------------------------------------------------
# wall-clock bookkeeping
# ----------------------------------------------------------------------
def parallel_json_path(path: str | Path | None = None) -> Path | None:
    """Where harness wall-clock timings are recorded (``None``: disabled).

    Recording is armed by an explicit path or by ``REPRO_PARALLEL_JSON``
    (the benchmark harness and ``repro reproduce --jobs`` arm it); plain
    unit-test runs leave no timing files behind.
    """
    if path is not None:
        return Path(path)
    env = os.environ.get(PARALLEL_JSON_ENV)
    return Path(env) if env else None


#: Stage timings every ``BENCH_parallel.json`` row carries, zero-filled
#: when a stage never ran.  A missing key is indistinguishable from "not
#: measured", and rows are diffed field-by-field across PRs — so the set
#: of keys is part of the record's contract, not an accident of which
#: code paths the run happened to take.
CANONICAL_STAGES = (
    "graph_build",
    "trace_gen",
    "hit_mask",
    "mask_derive",
    "reuse_build",
    "reuse_extend",
    "profile_build",
    "pricing",
)


def stage_breakdown() -> dict[str, dict[str, float]]:
    """Per-stage wall-clock totals accumulated so far in this process.

    Every canonical stage (:data:`CANONICAL_STAGES`) is present — zeroed
    when it never ran — plus any extra ``stage.*`` timing the process
    observed.  The stages cover the expensive halves of a cell, so a slow
    row in ``BENCH_parallel.json`` names its own bottleneck.  Wall clocks
    are non-deterministic, which is why this lives next to
    ``wall_seconds`` in the record rather than inside the deterministic
    ``metrics`` snapshot.  Worker stage timings reach the parent through
    the obs drain/absorb path, so pool runs include them.
    """
    registry = process_metrics()
    breakdown = {
        name: {"seconds": 0.0, "count": 0} for name in CANONICAL_STAGES
    }
    for name, timing in sorted(registry.timings.items()):
        if name.startswith("stage."):
            breakdown[name[len("stage."):]] = {
                "seconds": round(timing.total, 6),
                "count": timing.count,
            }
    return breakdown


def record_parallel_timing(entry: dict, path: str | Path | None = None) -> Path | None:
    """Append one timing record to ``BENCH_parallel.json`` (best effort).

    The file holds a JSON list of records ``{"benchmark", "jobs", "cells",
    "wall_seconds", ...}`` so speedups are measured, not asserted.  Every
    record is stamped with the deterministic families of the process
    metrics snapshot (counters, gauges, timing counts) under ``metrics``,
    so a perf claim in a future PR carries its own evidence — cache hit
    rates, tier traffic, and migration accounting travel with the wall
    time they explain — plus the wall-clock :func:`stage_breakdown`
    under ``stages``.
    """
    target = parallel_json_path(path)
    if target is None:
        return None
    entry = dict(entry)
    entry.setdefault("metrics", process_metrics().deterministic_snapshot())
    entry.setdefault("stages", stage_breakdown())
    records: list = []
    if target.exists():
        try:
            existing = json.loads(target.read_text(encoding="utf-8"))
            if isinstance(existing, list):
                records = existing
        except (OSError, json.JSONDecodeError):
            records = []
    records.append(entry)
    try:
        target.write_text(json.dumps(records, indent=2) + "\n", encoding="utf-8")
    except OSError:
        pass
    return target
