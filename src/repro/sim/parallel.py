"""Parallel experiment engine: process-pool fan-out of experiment cells.

The paper's evaluation is a large grid — apps x datasets x placements,
plus parameter sweeps — and every cell is *independent*: it builds its own
simulated memory system, registers a fresh application, and reports its
own result.  This module fans those cells out across worker processes:

- :class:`AppSpec` — a picklable, callable recipe for an application
  (app name, dataset name, scale, constructor kwargs).  It satisfies the
  ``app_factory`` contract of :mod:`repro.sim.experiment`, so the same
  object drives serial and parallel runs.
- :class:`JobSpec` — one experiment cell: an app spec, a platform, a flow
  (``static`` / ``atmem`` / ``coarse`` / ``cell`` / ``multitenant``), and
  the cell's knobs.  Specs are frozen, hashable, and picklable.
- :class:`ExperimentPool` — runs a batch of specs on a
  ``ProcessPoolExecutor``, collecting results in submission order.  A
  worker failure surfaces as :class:`ExperimentJobError` with the failing
  spec attached.  ``max_workers=1`` (or a pool that cannot start) falls
  back to in-process serial execution of the *same* job path.

Determinism: every job runs :func:`execute_job`, which seeds NumPy's
global RNG from the spec's content hash before executing, and all model
randomness (sampling profiler, dataset generators) is already locally
seeded.  Workers share no mutable state — each process keeps its own
memoised datasets and :class:`repro.sim.tracecache.TraceCache` — so a
parallel grid is bit-identical to a serial one (see
``tests/test_sim_parallel.py``).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import traceback
import zlib
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.config import PlatformConfig
from repro.core.runtime import RuntimeConfig
from repro.errors import ConfigurationError, ReproError
from repro.sim.experiment import (
    AtMemRunResult,
    StaticRunResult,
    run_atmem,
    run_coarse_grained,
    run_static,
)
from repro.sim.tracecache import TraceCache, process_trace_cache

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"

#: Environment variable overriding where wall-clock timings are recorded.
PARALLEL_JSON_ENV = "REPRO_PARALLEL_JSON"

#: Default timing-record file (relative to the current directory).
PARALLEL_JSON_DEFAULT = "BENCH_parallel.json"

FLOWS = ("static", "atmem", "coarse", "cell", "multitenant")


def resolve_jobs(jobs: int | None = None) -> int:
    """The effective worker count: explicit arg, else ``REPRO_JOBS``, else 1."""
    if jobs is not None:
        return max(1, int(jobs))
    raw = os.environ.get(JOBS_ENV)
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            raise ConfigurationError(
                f"{JOBS_ENV} must be an integer, got {raw!r}"
            ) from None
    return 1


# ----------------------------------------------------------------------
# specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AppSpec:
    """Picklable application recipe; calling it instantiates the app.

    Datasets are resolved by name in whatever process the spec is called
    in (memoised per process by :mod:`repro.graph.datasets`), so shipping
    an ``AppSpec`` to a worker costs a few hundred bytes, not a graph.
    """

    app: str
    dataset: str
    scale: int = 1024
    kwargs: tuple[tuple[str, Any], ...] = ()
    dataset_seed: int = 7

    @classmethod
    def make(
        cls, app: str, dataset: str, *, scale: int = 1024, dataset_seed: int = 7, **kwargs
    ) -> "AppSpec":
        """Build a spec from plain constructor kwargs."""
        return cls(
            app=app,
            dataset=dataset,
            scale=scale,
            dataset_seed=dataset_seed,
            kwargs=tuple(sorted(kwargs.items())),
        )

    def __call__(self):
        from repro.apps import make_app
        from repro.graph.datasets import dataset_by_name

        graph = dataset_by_name(self.dataset, scale=self.scale, seed=self.dataset_seed)
        return make_app(self.app, graph, **dict(self.kwargs))


@dataclass(frozen=True)
class JobSpec:
    """One experiment cell, fully described by picklable values.

    ``flow`` selects the experiment:

    - ``"static"`` — :func:`repro.sim.experiment.run_static` under
      ``placement``;
    - ``"atmem"`` — the full ATMem flow with ``runtime_config``;
    - ``"coarse"`` — the whole-object baseline;
    - ``"cell"`` — one overall-grid cell: baseline (all-slow), reference
      (``placement``), and ATMem, sharing one trace-cache entry;
    - ``"multitenant"`` — a shared-host scenario over ``tenants``.

    ``value`` and ``tag`` are caller bookkeeping (sweep coordinate, series
    label) carried through untouched.
    """

    app: AppSpec | None
    platform: PlatformConfig
    flow: str = "atmem"
    placement: str = "slow"
    runtime_config: RuntimeConfig | None = None
    count_tlb: bool = False
    value: float | None = None
    seed: int | None = None
    tag: str = ""
    tenants: tuple[tuple[str, AppSpec], ...] = ()

    def __post_init__(self) -> None:
        if self.flow not in FLOWS:
            raise ConfigurationError(
                f"unknown flow {self.flow!r}; expected one of {FLOWS}"
            )
        if self.flow == "multitenant":
            if not self.tenants:
                raise ConfigurationError("multitenant flow requires tenants")
        elif self.app is None:
            raise ConfigurationError(f"flow {self.flow!r} requires an app spec")

    def trace_key(self) -> tuple:
        """Content key of the app's deterministic access trace."""
        app = self.app
        if app is None:
            return ("multitenant", self.tenants)
        return (app.app, app.dataset, app.scale, app.kwargs, app.dataset_seed)

    def job_seed(self) -> int:
        """Deterministic per-job seed, independent of scheduling order."""
        if self.seed is not None:
            return self.seed
        blob = repr(
            (
                self.trace_key(),
                self.platform.name,
                self.flow,
                self.placement,
                self.runtime_config,
                self.count_tlb,
                self.value,
                self.tag,
            )
        ).encode()
        return zlib.crc32(blob)


@dataclass
class CellResult:
    """Baseline / reference / ATMem triple for one overall-grid cell."""

    baseline: StaticRunResult
    reference: StaticRunResult
    atmem: AtMemRunResult

    @property
    def speedup(self) -> float:
        """ATMem speedup over the all-slow baseline."""
        return self.baseline.seconds / self.atmem.seconds

    @property
    def slowdown_vs_reference(self) -> float:
        """ATMem time relative to the reference placement."""
        return self.atmem.seconds / self.reference.seconds


class ExperimentJobError(ReproError):
    """A worker failed; carries the failing spec and the worker traceback."""

    def __init__(self, spec: JobSpec, kind: str, message: str, worker_tb: str = "") -> None:
        self.spec = spec
        self.kind = kind
        self.worker_traceback = worker_tb
        super().__init__(f"experiment job failed ({kind}: {message}) for spec {spec!r}")


# ----------------------------------------------------------------------
# job execution (shared by workers and the serial fallback)
# ----------------------------------------------------------------------
def execute_job(spec: JobSpec, *, trace_cache: TraceCache | None = None):
    """Run one job in the current process.

    Seeds the global NumPy RNG from the spec content first, so any code
    that (incorrectly) reaches for global randomness still behaves
    identically regardless of which worker runs the job or in what order.
    """
    np.random.seed(spec.job_seed() & 0x7FFFFFFF)
    cache = process_trace_cache() if trace_cache is None else trace_cache
    key = spec.trace_key()
    if spec.flow == "static":
        return run_static(
            spec.app,
            spec.platform,
            spec.placement,
            count_tlb=spec.count_tlb,
            trace_cache=cache,
            trace_key=key,
        )
    if spec.flow == "atmem":
        return run_atmem(
            spec.app,
            spec.platform,
            runtime_config=spec.runtime_config,
            count_tlb=spec.count_tlb,
            trace_cache=cache,
            trace_key=key,
        )
    if spec.flow == "coarse":
        return run_coarse_grained(
            spec.app, spec.platform, trace_cache=cache, trace_key=key
        )
    if spec.flow == "cell":
        return CellResult(
            baseline=run_static(
                spec.app, spec.platform, "slow",
                count_tlb=spec.count_tlb, trace_cache=cache, trace_key=key,
            ),
            reference=run_static(
                spec.app, spec.platform, spec.placement,
                count_tlb=spec.count_tlb, trace_cache=cache, trace_key=key,
            ),
            atmem=run_atmem(
                spec.app, spec.platform,
                runtime_config=spec.runtime_config,
                count_tlb=spec.count_tlb, trace_cache=cache, trace_key=key,
            ),
        )
    # multitenant: imported lazily to avoid a module cycle.
    from repro.sim.multitenant import MultiTenantHost

    host = MultiTenantHost(
        spec.platform, runtime_config=spec.runtime_config or RuntimeConfig()
    )
    for name, app_spec in spec.tenants:
        host.admit(name, app_spec)
    return host.run()


def _pool_entry(spec: JobSpec):
    """Worker-side wrapper: never lets an exception cross unpickled."""
    try:
        return ("ok", execute_job(spec))
    except Exception as exc:  # noqa: BLE001 — re-raised with spec in parent
        return ("err", type(exc).__name__, str(exc), traceback.format_exc())


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------
class ExperimentPool:
    """Fan a batch of :class:`JobSpec` out across worker processes.

    Results come back in submission order.  With ``max_workers=1``, a
    single-spec batch, or a pool that fails to start (sandboxed
    environments, missing semaphores), execution degrades to an in-process
    serial loop over the *same* :func:`execute_job` path, so results are
    identical either way.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = resolve_jobs(max_workers)
        #: Filled after each :meth:`run`: how the batch actually executed.
        self.last_mode: str = "unstarted"

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[JobSpec]) -> list:
        """Execute every spec; return their results in order."""
        specs = list(specs)
        if not specs:
            self.last_mode = "empty"
            return []
        workers = min(self.max_workers, len(specs))
        if workers <= 1:
            return self._run_serial(specs)
        try:
            executor = ProcessPoolExecutor(
                max_workers=workers, mp_context=self._mp_context()
            )
        except (OSError, ValueError, PermissionError):
            return self._run_serial(specs)
        try:
            with executor:
                futures = [executor.submit(_pool_entry, s) for s in specs]
                results = []
                for spec, future in zip(specs, futures):
                    payload = future.result()
                    if payload[0] == "err":
                        _, kind, message, worker_tb = payload
                        raise ExperimentJobError(spec, kind, message, worker_tb)
                    results.append(payload[1])
        except BrokenProcessPool:
            # The pool died before producing results (fork bombs out in
            # some sandboxes); the jobs themselves are side-effect free,
            # so rerunning serially is safe.
            return self._run_serial(specs)
        self.last_mode = f"parallel[{workers}]"
        return results

    def _run_serial(self, specs: Sequence[JobSpec]) -> list:
        self.last_mode = "serial"
        return [execute_job(spec) for spec in specs]

    @staticmethod
    def _mp_context():
        # fork shares the parent's memoised datasets copy-on-write, which
        # avoids regenerating graphs per worker; fall back to the platform
        # default where fork is unavailable.
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_jobs(specs: Sequence[JobSpec], jobs: int | None = None) -> list:
    """One-shot convenience: ``ExperimentPool(jobs).run(specs)``."""
    return ExperimentPool(jobs).run(specs)


# ----------------------------------------------------------------------
# wall-clock bookkeeping
# ----------------------------------------------------------------------
def parallel_json_path(path: str | Path | None = None) -> Path | None:
    """Where harness wall-clock timings are recorded (``None``: disabled).

    Recording is armed by an explicit path or by ``REPRO_PARALLEL_JSON``
    (the benchmark harness and ``repro reproduce --jobs`` arm it); plain
    unit-test runs leave no timing files behind.
    """
    if path is not None:
        return Path(path)
    env = os.environ.get(PARALLEL_JSON_ENV)
    return Path(env) if env else None


def record_parallel_timing(entry: dict, path: str | Path | None = None) -> Path | None:
    """Append one timing record to ``BENCH_parallel.json`` (best effort).

    The file holds a JSON list of records ``{"benchmark", "jobs", "cells",
    "wall_seconds", ...}`` so speedups are measured, not asserted.
    """
    target = parallel_json_path(path)
    if target is None:
        return None
    records: list = []
    if target.exists():
        try:
            existing = json.loads(target.read_text(encoding="utf-8"))
            if isinstance(existing, list):
                records = existing
        except (OSError, json.JSONDecodeError):
            records = []
    records.append(entry)
    try:
        target.write_text(json.dumps(records, indent=2) + "\n", encoding="utf-8")
    except OSError:
        pass
    return target
