"""Content-keyed caching of deterministic run artifacts.

Every experiment flow in :mod:`repro.sim.experiment` runs an application's
``run_once()`` and classifies the resulting address stream through the LLC
model.  Both artifacts are *pure functions of the cell's inputs*:

- the access trace depends only on (app, constructor params, dataset,
  scale) — virtual addresses are assigned by a deterministic bump
  allocator in registration order, so the trace is byte-identical across
  placements, sweep points, and iterations (``run_once`` is contractually
  idempotent, see :class:`repro.apps.base.GraphApp`);
- the LLC hit mask (:meth:`repro.mem.cache.WorkingSetCache.hit_mask`) is a
  pure function of the trace and the cache geometry ``(size, line)``.

The paper's evaluation grid therefore regenerates the same trace up to six
times per cell (three placements x two iterations) and re-solves the same
working-set model each time.  :class:`TraceCache` computes each artifact
once per content key and serves the rest from memory, which is where most
of the harness's serial speedup comes from.

The cache is bounded (LRU over traces; a trace's hit masks travel with
it) because grid traces are large.  ``REPRO_TRACE_CACHE`` overrides the
bound; ``0`` disables caching entirely.  Each worker process of
:mod:`repro.sim.parallel` owns an independent cache, so no state is shared
across processes and parallel results stay bit-identical to serial ones.

**Integrity:** every cached trace carries a CRC32 content checksum taken
at insertion.  A hit whose trace no longer matches its checksum — or a
hit mask whose shape disagrees with its trace — is discarded and
recomputed from scratch instead of silently feeding wrong figures
downstream.  The ``cache.corrupt`` fault-injection site flips bytes in a
cached trace on lookup, which is exactly what the checksum path must
catch (``stats.corruption_discards`` counts the recoveries).
"""

from __future__ import annotations

import os
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable

import numpy as np

from repro.faults.injector import fault_point
from repro.faults.plan import SITE_CACHE_CORRUPT
from repro.mem.trace import AccessTrace

#: Environment variable overriding the trace-entry bound (0 disables).
CACHE_SIZE_ENV = "REPRO_TRACE_CACHE"

#: Default number of distinct traces kept alive per process.
DEFAULT_MAX_TRACES = 8


def configured_max_traces() -> int:
    """The trace-entry bound, honouring ``REPRO_TRACE_CACHE``."""
    raw = os.environ.get(CACHE_SIZE_ENV)
    if raw is None or raw == "":
        return DEFAULT_MAX_TRACES
    value = int(raw)
    if value < 0:
        raise ValueError(f"{CACHE_SIZE_ENV} must be >= 0, got {value}")
    return value


def trace_checksum(trace: AccessTrace) -> int:
    """CRC32 over the trace's program-order address bytes.

    Goes through ``all_addresses()`` (the only method the cache requires
    of a trace), so any phase-level corruption changes the checksum.
    """
    addrs = np.ascontiguousarray(trace.all_addresses(), dtype=np.int64)
    return zlib.crc32(addrs.view(np.uint8).data)


@dataclass
class TraceCacheStats:
    """Hit/miss counters, split by artifact kind."""

    trace_hits: int = 0
    trace_misses: int = 0
    mask_hits: int = 0
    mask_misses: int = 0
    evictions: int = 0
    #: Corrupted / shape-mismatched entries dropped and recomputed.
    corruption_discards: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
            "mask_hits": self.mask_hits,
            "mask_misses": self.mask_misses,
            "evictions": self.evictions,
            "corruption_discards": self.corruption_discards,
        }


@dataclass
class _TraceEntry:
    """A cached trace plus the checksum it must keep matching."""

    trace: AccessTrace
    checksum: int


class TraceCache:
    """LRU cache of access traces and their derived LLC hit masks.

    Keys are caller-chosen hashable content keys (the parallel engine uses
    :meth:`repro.sim.parallel.JobSpec.trace_key`).  Correctness relies on
    the key covering everything the trace depends on; two cells that share
    a key *must* produce byte-identical traces.  Entries are
    checksum-verified on every hit; a mismatch (bit rot, an injected
    ``cache.corrupt`` fault, an aliased key) discards the entry and
    recomputes it.
    """

    def __init__(self, max_traces: int | None = None) -> None:
        self.max_traces = (
            configured_max_traces() if max_traces is None else max_traces
        )
        self._traces: OrderedDict[Hashable, _TraceEntry] = OrderedDict()
        self._masks: dict[Hashable, dict[tuple, np.ndarray]] = {}
        self.stats = TraceCacheStats()

    # ------------------------------------------------------------------
    def _discard(self, key: Hashable) -> None:
        self._traces.pop(key, None)
        self._masks.pop(key, None)
        self.stats.corruption_discards += 1

    def _verified(self, key: Hashable) -> AccessTrace | None:
        """The cached trace if present and intact, else ``None``."""
        entry = self._traces.get(key)
        if entry is None:
            return None
        if fault_point(SITE_CACHE_CORRUPT, tag=str(key)):
            _corrupt_trace(entry.trace)
        if trace_checksum(entry.trace) != entry.checksum:
            self._discard(key)
            return None
        return entry.trace

    def trace(self, key: Hashable, builder: Callable[[], AccessTrace]) -> AccessTrace:
        """The trace under ``key``, built once via ``builder()``."""
        if self.max_traces == 0:
            self.stats.trace_misses += 1
            return builder()
        cached = self._verified(key)
        if cached is not None:
            self.stats.trace_hits += 1
            self._traces.move_to_end(key)
            return cached
        self.stats.trace_misses += 1
        trace = builder()
        self._traces[key] = _TraceEntry(trace=trace, checksum=trace_checksum(trace))
        self._masks.setdefault(key, {})
        while len(self._traces) > self.max_traces:
            evicted, _ = self._traces.popitem(last=False)
            self._masks.pop(evicted, None)
            self.stats.evictions += 1
        return trace

    def hit_mask(self, key: Hashable, llc, trace: AccessTrace) -> np.ndarray:
        """The LLC hit mask of ``trace`` under ``llc``, computed once.

        The mask key extends the trace key with the cache-model geometry,
        so the same trace evaluated on different platforms (different LLC
        sizes) gets independent masks.  A cached mask whose shape does not
        match the trace is treated as corrupt and recomputed.
        """
        if self.max_traces == 0 or key not in self._masks:
            self.stats.mask_misses += 1
            return llc.hit_mask(trace.all_addresses())
        llc_sig = (type(llc).__name__, llc.size_bytes, llc.line_size)
        masks = self._masks[key]
        cached = masks.get(llc_sig)
        expected = getattr(trace, "total_accesses", None)
        if (
            cached is not None
            and expected is not None
            and cached.shape != (expected,)
        ):
            masks.pop(llc_sig, None)
            self.stats.corruption_discards += 1
            cached = None
        if cached is not None:
            self.stats.mask_hits += 1
            return cached
        self.stats.mask_misses += 1
        mask = llc.hit_mask(trace.all_addresses())
        masks[llc_sig] = mask
        return mask

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._traces)

    def clear(self) -> None:
        """Drop every cached artifact (counters are kept)."""
        self._traces.clear()
        self._masks.clear()


def _corrupt_trace(trace: AccessTrace) -> None:
    """Flip bits in a trace's largest phase (the injected corruption)."""
    phases = getattr(trace, "phases", None)
    if not phases:
        return
    phase = max(phases, key=lambda p: p.addrs.size)
    if phase.addrs.size:
        writable = phase.addrs.flags.writeable
        phase.addrs.flags.writeable = True
        phase.addrs[phase.addrs.size // 2] ^= 0x5A5A
        phase.addrs.flags.writeable = writable


_PROCESS_CACHE: TraceCache | None = None


def process_trace_cache() -> TraceCache:
    """The per-process shared cache (one per worker, one for serial runs)."""
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = TraceCache()
    return _PROCESS_CACHE
