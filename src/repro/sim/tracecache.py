"""Content-keyed caching of deterministic run artifacts.

Every experiment flow in :mod:`repro.sim.experiment` runs an application's
``run_once()`` and classifies the resulting address stream through the LLC
model.  Both artifacts are *pure functions of the cell's inputs*:

- the access trace depends only on (app, constructor params, dataset,
  scale) — virtual addresses are assigned by a deterministic bump
  allocator in registration order, so the trace is byte-identical across
  placements, sweep points, and iterations (``run_once`` is contractually
  idempotent, see :class:`repro.apps.base.GraphApp`);
- the LLC hit mask (:meth:`repro.mem.cache.WorkingSetCache.hit_mask`) is a
  pure function of the trace and the cache geometry ``(size, line)``.

The full artifact lattice is ``trace -> reuse profile -> hit mask ->
miss profile``.  The reuse profile (:mod:`repro.sim.reusepack`) is keyed
by the **trace alone** — reuse gaps are LLC-size-independent — so a
capacity sweep folds the trace once and derives every geometry's mask
with one vectorised compare (:meth:`TraceCache.reuse_profile` /
``stage.mask_derive``).  Derived masks are bit-exact with the direct
simulation by construction; setting ``REPRO_VERIFY_MASK=1`` re-runs the
direct ``llc.hit_mask`` as a parity oracle for every derived mask
(``mask.parity_checks`` / ``mask.parity_failures``) and raises
:class:`repro.errors.TraceError` on divergence.  One lattice level down,
``REPRO_VERIFY_REUSE=1`` does the same for the fold itself: the O(N)
last-seen kernel (:mod:`repro.mem.cachejit`) and incremental phase
extensions (:meth:`ReuseProfile.extend`) are both re-checked against the
argsort refold (``reuse.parity_checks`` / ``reuse.parity_failures``).

The paper's evaluation grid therefore regenerates the same trace up to six
times per cell (three placements x two iterations) and re-solves the same
working-set model each time.  :class:`TraceCache` computes each artifact
once per content key and serves the rest from memory, which is where most
of the harness's serial speedup comes from.

The cache is bounded (LRU over traces; a trace's hit masks travel with
it) because grid traces are large.  ``REPRO_TRACE_CACHE`` overrides the
bound; ``0`` disables memory caching entirely.

**The persistent tier:** when ``REPRO_TRACE_STORE`` is set, the cache
becomes an in-process LRU *view* over the shared on-disk
:class:`repro.sim.tracestore.TraceStore`.  A memory miss consults the
store before running the builder; store hits arrive as read-only
``mmap`` views whose pages are shared by every worker process and across
sessions, and fresh artifacts are written back atomically so sibling
workers (and the next session) skip the work entirely.  Results stay
bit-identical either way — the store holds exactly the bytes the builder
would produce.

**Integrity:** every cached trace carries a CRC32 content checksum taken
at insertion, and store entries are CRC-verified once per process at
load.  While a fault injector is active, hits are additionally
re-verified against their insertion checksum — the ``cache.corrupt``
fault site flips bytes in a cached trace on lookup, and the checksum
path must discard and recompute it (``stats.corruption_discards`` counts
the recoveries).  Outside injection the per-hit re-verification is
skipped: in-memory entries are immutable by construction, and paying a
full checksum pass per hit dominated warm-cell time.
"""

from __future__ import annotations

import os
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable

import numpy as np

from repro.errors import TraceError
from repro.faults.injector import active_injector, fault_point
from repro.faults.plan import SITE_CACHE_CORRUPT
from repro.mem.cache import LINE_SIZE, VERIFY_REUSE_ENV
from repro.mem.trace import AccessTrace, worker_byte_budget
from repro.obs.metrics import process_metrics
from repro.obs.tracer import span
from repro.sim.profilepack import TraceProfile, build_profile
from repro.sim.reusepack import (
    ReuseProfile,
    build_reuse_profile,
    derivable,
    fold_reuse_chunks,
)
from repro.sim.tracestore import TraceStore, process_trace_store

#: Environment variable overriding the trace-entry bound (0 disables).
CACHE_SIZE_ENV = "REPRO_TRACE_CACHE"

#: When truthy, every reuse-derived hit mask is re-computed by the
#: direct ``llc.hit_mask`` simulation and the two must be bit-identical
#: (the mask parity oracle; see REPRO_VERIFY_PROFILE for its pricing
#: counterpart).
VERIFY_MASK_ENV = "REPRO_VERIFY_MASK"

#: Default number of distinct traces kept alive per process.
DEFAULT_MAX_TRACES = 8

#: Sentinel: bind the cache to the process-wide env-configured store.
_STORE_FROM_ENV = "env"


def configured_max_traces() -> int:
    """The trace-entry bound, honouring ``REPRO_TRACE_CACHE``."""
    raw = os.environ.get(CACHE_SIZE_ENV)
    if raw is None or raw == "":
        return DEFAULT_MAX_TRACES
    value = int(raw)
    if value < 0:
        raise ValueError(f"{CACHE_SIZE_ENV} must be >= 0, got {value}")
    return value


def _flat_of(trace: AccessTrace) -> np.ndarray:
    """The trace's program-order addresses as one contiguous int64 array."""
    return np.ascontiguousarray(trace.all_addresses(), dtype=np.int64)


def trace_checksum(trace: AccessTrace) -> int:
    """CRC32 over the trace's program-order address bytes.

    Goes through ``all_addresses()`` (the only method the cache requires
    of a trace), so any phase-level corruption changes the checksum.
    """
    return zlib.crc32(_flat_of(trace).view(np.uint8).data)


def _chunked_checksum(trace: AccessTrace, chunk_bytes: int) -> int:
    """:func:`trace_checksum` folded chunk-by-chunk — same CRC, no flat.

    CRC32 folds associatively over a byte stream, so running it over
    :meth:`~repro.mem.trace.AccessTrace.iter_chunks` yields the exact
    checksum of the concatenated array without materialising it.
    """
    crc = 0
    for chunk in trace.iter_chunks(chunk_bytes):
        crc = zlib.crc32(
            np.ascontiguousarray(chunk, dtype=np.int64).view(np.uint8).data,
            crc,
        )
    return crc


def _over_budget(trace) -> bool:
    """Whether flat-copy materialisation would blow the worker budget.

    True when doubling the trace with a flat ``all_addresses`` copy
    would spend more than a quarter of ``REPRO_WORKER_BYTES`` — the
    signal to switch every fold onto the chunked streaming path.
    """
    if not isinstance(trace, AccessTrace):
        return False
    return trace.total_accesses * 8 > worker_byte_budget() // 4


def _fold_chunk_bytes() -> int:
    """Chunk size for streaming folds: an eighth of the worker budget."""
    return max(8, worker_byte_budget() // 8)


def llc_signature(llc) -> tuple:
    """The geometry signature that keys hit masks per cache model."""
    return (type(llc).__name__, llc.size_bytes, llc.line_size)


@dataclass
class TraceCacheStats:
    """Hit/miss counters, split by artifact kind."""

    trace_hits: int = 0
    trace_misses: int = 0
    mask_hits: int = 0
    mask_misses: int = 0
    profile_hits: int = 0
    profile_misses: int = 0
    reuse_hits: int = 0
    reuse_misses: int = 0
    #: Reuse misses served by extending a prior phase's profile (only the
    #: phase delta was folded, not the whole stream).
    reuse_extends: int = 0
    evictions: int = 0
    #: Corrupted / shape-mismatched entries dropped and recomputed.
    corruption_discards: int = 0
    #: Memory misses served from the persistent store (no builder run).
    store_trace_hits: int = 0
    #: Mask misses served from the persistent store (no LLC simulation).
    store_mask_hits: int = 0
    #: Profile misses served from the persistent store (no fold).
    store_profile_hits: int = 0
    #: Reuse-profile misses served from the persistent store (no fold).
    store_reuse_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
            "mask_hits": self.mask_hits,
            "mask_misses": self.mask_misses,
            "profile_hits": self.profile_hits,
            "profile_misses": self.profile_misses,
            "reuse_hits": self.reuse_hits,
            "reuse_misses": self.reuse_misses,
            "reuse_extends": self.reuse_extends,
            "evictions": self.evictions,
            "corruption_discards": self.corruption_discards,
            "store_trace_hits": self.store_trace_hits,
            "store_mask_hits": self.store_mask_hits,
            "store_profile_hits": self.store_profile_hits,
            "store_reuse_hits": self.store_reuse_hits,
        }


def _count(name: str, amount: float = 1.0) -> None:
    """Mirror one cache counter into the process metrics registry."""
    process_metrics().inc(f"cache.{name}", amount)


@dataclass
class _TraceEntry:
    """A cached trace plus the checksum it must keep matching.

    ``flat`` is the program-order address array, materialised once at
    insertion and shared by every fold over the trace (checksum, hit
    masks, reuse profiles) — previously each ``llc_sig`` of the same
    trace re-derived it.  For traces whose flat copy would blow the
    ``REPRO_WORKER_BYTES`` budget it stays ``None``: the checksum is
    folded chunk-by-chunk at insertion and every fold takes the chunked
    streaming path instead.
    """

    trace: AccessTrace
    checksum: int
    flat: np.ndarray | None


class TraceCache:
    """LRU cache of access traces and their derived LLC hit masks.

    Keys are caller-chosen hashable content keys (the parallel engine uses
    :meth:`repro.sim.parallel.JobSpec.trace_key`).  Correctness relies on
    the key covering everything the trace depends on; two cells that share
    a key *must* produce byte-identical traces.

    ``store`` selects the persistent tier: the default binds to the
    process-wide store configured by ``REPRO_TRACE_STORE`` (disabled when
    the variable is unset); pass an explicit :class:`TraceStore` to pin
    one, or ``None`` to force memory-only operation.
    """

    def __init__(
        self,
        max_traces: int | None = None,
        store: TraceStore | None | str = _STORE_FROM_ENV,
    ) -> None:
        self.max_traces = (
            configured_max_traces() if max_traces is None else max_traces
        )
        self._store_from_env = store == _STORE_FROM_ENV
        self._store: TraceStore | None = (
            None if self._store_from_env else store  # type: ignore[assignment]
        )
        self._traces: OrderedDict[Hashable, _TraceEntry] = OrderedDict()
        self._masks: dict[Hashable, dict[tuple, np.ndarray]] = {}
        self._profiles: dict[Hashable, dict[tuple, TraceProfile]] = {}
        self._reuse: dict[Hashable, dict[int, ReuseProfile]] = {}
        self.stats = TraceCacheStats()

    @property
    def store(self) -> TraceStore | None:
        """The persistent tier behind this cache (``None``: memory only)."""
        if self._store_from_env:
            return process_trace_store()
        return self._store

    # ------------------------------------------------------------------
    def _discard(self, key: Hashable) -> None:
        self._traces.pop(key, None)
        self._masks.pop(key, None)
        self._profiles.pop(key, None)
        self._reuse.pop(key, None)
        self.stats.corruption_discards += 1
        _count("corruption_discards")

    def _flat_addrs(self, key: Hashable, trace: AccessTrace) -> np.ndarray:
        """The trace's flat address array, shared across folds.

        Serves the per-entry array materialised at insertion whenever the
        caller's trace *is* the cached one; otherwise (memory caching off,
        or an evicted entry) falls back to a direct materialisation.
        """
        entry = self._traces.get(key)
        if entry is not None and entry.trace is trace and entry.flat is not None:
            return entry.flat
        return _flat_of(trace)

    def _verified(self, key: Hashable) -> AccessTrace | None:
        """The cached trace if present and intact, else ``None``.

        The per-hit checksum comparison runs only while a fault injector
        is installed — that is the only path that mutates cached entries
        (``cache.corrupt``), and checksumming benchmark-scale traces on
        every hit is the dominant warm-path cost otherwise.
        """
        entry = self._traces.get(key)
        if entry is None:
            return None
        if active_injector() is not None:
            if fault_point(SITE_CACHE_CORRUPT, tag=str(key)):
                _corrupt_trace(entry.trace)
            current = (
                _chunked_checksum(entry.trace, _fold_chunk_bytes())
                if entry.flat is None and isinstance(entry.trace, AccessTrace)
                else trace_checksum(entry.trace)
            )
            if current != entry.checksum:
                self._discard(key)
                return None
        return entry.trace

    def _trace_from_store_or_builder(
        self, key: Hashable, builder: Callable[[], AccessTrace]
    ) -> AccessTrace:
        """Store load on a memory miss, else build (and write back).

        Store-cold builds run under the ``trace`` single-flight lease so
        two workers reaching the same cold key never generate (and
        persist) the same trace concurrently: the loser waits, then
        adopts the committed entry — or builds in-memory when the winner
        skipped persistence under the write policy.
        """
        store = self.store
        if store is None:
            return self._build_trace(key, builder)[0]
        trace = store.load_trace(key)
        if trace is not None:
            self.stats.store_trace_hits += 1
            _count("store_trace_hits")
            return trace
        with store.single_flight(
            key, "trace", done=lambda: store.has_trace(key)
        ) as winner:
            if not winner:
                adopted = store.load_trace(key)
                if adopted is not None:
                    self.stats.store_trace_hits += 1
                    _count("store_trace_hits")
                    return adopted
            trace, build_seconds = self._build_trace(key, builder)
            if isinstance(trace, AccessTrace) and store.should_persist(
                trace.total_accesses * 8, build_seconds
            ):
                store.save_trace(key, trace)
        return trace

    def _build_trace(
        self, key: Hashable, builder: Callable[[], AccessTrace]
    ) -> tuple[AccessTrace, float]:
        """Run the builder under the trace-generation span and timer."""
        started = time.perf_counter()
        with span("cache.build_trace", cat="cache", key=str(key)):
            trace = builder()
        elapsed = time.perf_counter() - started
        process_metrics().observe("stage.trace_gen", elapsed)
        return trace, elapsed

    def trace(self, key: Hashable, builder: Callable[[], AccessTrace]) -> AccessTrace:
        """The trace under ``key``, built once via ``builder()``."""
        if self.max_traces == 0:
            self.stats.trace_misses += 1
            _count("trace_misses")
            return self._trace_from_store_or_builder(key, builder)
        cached = self._verified(key)
        if cached is not None:
            self.stats.trace_hits += 1
            _count("trace_hits")
            self._traces.move_to_end(key)
            return cached
        self.stats.trace_misses += 1
        _count("trace_misses")
        trace = self._trace_from_store_or_builder(key, builder)
        if _over_budget(trace):
            flat = None
            checksum = _chunked_checksum(trace, _fold_chunk_bytes())
        else:
            flat = _flat_of(trace)
            checksum = zlib.crc32(flat.view(np.uint8).data)
        self._traces[key] = _TraceEntry(
            trace=trace,
            checksum=checksum,
            flat=flat,
        )
        self._masks.setdefault(key, {})
        self._profiles.setdefault(key, {})
        self._reuse.setdefault(key, {})
        while len(self._traces) > self.max_traces:
            evicted, _ = self._traces.popitem(last=False)
            self._masks.pop(evicted, None)
            self._profiles.pop(evicted, None)
            self._reuse.pop(evicted, None)
            self.stats.evictions += 1
            _count("evictions")
        return trace

    def hit_mask(self, key: Hashable, llc, trace: AccessTrace) -> np.ndarray:
        """The LLC hit mask of ``trace`` under ``llc``, computed once.

        The mask key extends the trace key with the cache-model geometry,
        so the same trace evaluated on different platforms (different LLC
        sizes) gets independent masks.  A cached mask whose shape does not
        match the trace is treated as corrupt and recomputed.

        For a plain :class:`~repro.mem.cache.WorkingSetCache` the mask is
        *derived* from the trace's reuse profile (one O(log N) window
        solve plus one compare, ``stage.mask_derive``) instead of
        re-running the O(N log N) direct fold — a capacity sweep pays the
        fold once (``stage.reuse_build``) and derives every geometry from
        it.  Other cache models, or traces the profile cannot describe,
        take the direct ``stage.hit_mask`` path unchanged.
        """
        llc_sig = llc_signature(llc)
        expected = getattr(trace, "total_accesses", None)
        masks = (
            self._masks.get(key) if self.max_traces != 0 else None
        )
        if masks is not None:
            cached = masks.get(llc_sig)
            if (
                cached is not None
                and expected is not None
                and cached.shape != (expected,)
            ):
                masks.pop(llc_sig, None)
                self.stats.corruption_discards += 1
                _count("corruption_discards")
                cached = None
            if cached is not None:
                self.stats.mask_hits += 1
                _count("mask_hits")
                return cached
        self.stats.mask_misses += 1
        _count("mask_misses")
        mask = None
        store = self.store
        if store is not None and expected is not None:
            mask = store.load_mask(key, llc_sig, expected)
            if mask is not None:
                self.stats.store_mask_hits += 1
                _count("store_mask_hits")
        if mask is None:
            if derivable(llc) and expected is not None:
                profile = self.reuse_profile(key, trace, llc.line_size)
                started = time.perf_counter()
                with span("cache.derive_mask", cat="cache", key=str(key)):
                    mask = profile.hit_mask_for(llc)
                fold_seconds = time.perf_counter() - started
                process_metrics().observe("stage.mask_derive", fold_seconds)
                if os.environ.get(VERIFY_MASK_ENV):
                    self._verify_mask(key, llc, trace, mask)
            else:
                started = time.perf_counter()
                with span("cache.build_mask", cat="cache", key=str(key)):
                    mask = llc.hit_mask(self._flat_addrs(key, trace))
                fold_seconds = time.perf_counter() - started
                process_metrics().observe("stage.hit_mask", fold_seconds)
            # Masks persist on their own merit — the trace may legitimately
            # be absent (the write policy can skip huge trace payloads while
            # the 8x-packed mask is still a bargain).
            if store is not None and store.should_persist(
                (int(mask.size) + 7) // 8, fold_seconds
            ):
                store.save_mask(key, llc_sig, mask)
        if masks is not None:
            masks[llc_sig] = mask
        return mask

    def reuse_profile(
        self,
        key: Hashable,
        trace: AccessTrace,
        line_size: int = LINE_SIZE,
        extend_from: Hashable | None = None,
    ) -> ReuseProfile:
        """The compiled reuse profile of ``trace``, folded once.

        Fourth artifact of the lattice (see :mod:`repro.sim.reusepack`):
        keyed by the **trace key and line granularity only** — reuse gaps
        are LLC-size-independent, so one profile serves every capacity of
        a sweep.  A cached or stored profile that no longer describes the
        trace is discarded and rebuilt, mirroring the mask shape guard.

        ``extend_from`` names a prior key whose trace is a **prefix** of
        this one (the multi-tenant host's phase chain guarantees it): if
        that profile is cached and carries fold state, only the suffix is
        folded (``stage.reuse_extend``, ``reuse_extends``) instead of the
        whole stream.  ``REPRO_VERIFY_REUSE=1`` re-runs the full refold
        as a parity oracle after every extension and raises on
        divergence.
        """
        expected = getattr(trace, "total_accesses", None)
        line_size = int(line_size)
        cache = self._reuse.get(key) if self.max_traces != 0 else None
        if cache is not None:
            cached = cache.get(line_size)
            if (
                cached is not None
                and expected is not None
                and cached.n != expected
            ):
                cache.pop(line_size, None)
                self.stats.corruption_discards += 1
                _count("corruption_discards")
                cached = None
            if cached is not None:
                self.stats.reuse_hits += 1
                _count("reuse_hits")
                return cached
        self.stats.reuse_misses += 1
        _count("reuse_misses")
        profile = None
        store = self.store
        if store is not None and expected is not None:
            profile = store.load_reuse(key, line_size, expected)
            if profile is not None:
                self.stats.store_reuse_hits += 1
                _count("store_reuse_hits")
        if profile is None:
            if store is None:
                profile = self._fold_reuse(
                    key, extend_from, trace, line_size, expected
                )
            else:
                # Store-cold fold: single-flight so concurrent workers
                # never fold (and persist) the same reuse curve twice.
                with store.single_flight(
                    key,
                    f"reuse-{line_size}",
                    done=lambda: store.has_reuse(key, line_size),
                ) as winner:
                    if not winner and expected is not None:
                        profile = store.load_reuse(key, line_size, expected)
                        if profile is not None:
                            self.stats.store_reuse_hits += 1
                            _count("store_reuse_hits")
                    if profile is None:
                        started = time.perf_counter()
                        profile = self._fold_reuse(
                            key, extend_from, trace, line_size, expected
                        )
                        fold_seconds = time.perf_counter() - started
                        store.heartbeat_lease(key, f"reuse-{line_size}")
                        # v2 artifact is float64 [4, n + 1].
                        if store.should_persist(
                            32 * (profile.n + 1), fold_seconds
                        ):
                            store.save_reuse(key, line_size, profile)
        if cache is not None:
            cache[line_size] = profile
        return profile

    def _fold_reuse(
        self,
        key: Hashable,
        extend_from: Hashable | None,
        trace: AccessTrace,
        line_size: int,
        expected: int | None,
    ) -> ReuseProfile:
        """Fold a reuse profile — incrementally when a base qualifies."""
        base = None
        if extend_from is not None and self.max_traces != 0:
            base = (self._reuse.get(extend_from) or {}).get(line_size)
        if (
            base is not None
            and base.can_extend
            and expected is not None
            and base.n <= expected
        ):
            flat = self._flat_addrs(key, trace)
            started = time.perf_counter()
            with span("cache.extend_reuse", cat="cache", key=str(key)):
                profile = base.extend(flat[base.n :])
            process_metrics().observe(
                "stage.reuse_extend", time.perf_counter() - started
            )
            self.stats.reuse_extends += 1
            _count("reuse_extends")
            if os.environ.get(VERIFY_REUSE_ENV):
                self._verify_reuse(key, trace, line_size, profile)
            return profile
        started = time.perf_counter()
        if _over_budget(trace):
            # Streaming fold: seed on the first chunk, extend per chunk —
            # bit-identical to the one-shot fold (extend's contract, and
            # REPRO_VERIFY_REUSE re-proves it below), without the flat
            # all_addresses copy the worker budget forbids.
            with span("cache.build_reuse", cat="cache", key=str(key)):
                profile = fold_reuse_chunks(
                    trace.iter_chunks(_fold_chunk_bytes()), line_size
                )
            process_metrics().observe(
                "stage.reuse_build", time.perf_counter() - started
            )
            if os.environ.get(VERIFY_REUSE_ENV):
                self._verify_reuse(key, trace, line_size, profile)
            return profile
        with span("cache.build_reuse", cat="cache", key=str(key)):
            profile = build_reuse_profile(
                self._flat_addrs(key, trace), line_size
            )
        process_metrics().observe(
            "stage.reuse_build", time.perf_counter() - started
        )
        return profile

    def _verify_reuse(
        self, key: Hashable, trace: AccessTrace, line_size: int, extended
    ) -> None:
        """The extend parity oracle: a full refold must agree bit-for-bit."""
        registry = process_metrics()
        registry.inc("reuse.parity_checks")
        with span("cache.verify_reuse", cat="cache", key=str(key)):
            direct = build_reuse_profile(
                self._flat_addrs(key, trace), line_size, with_state=False
            )
        if not (
            np.array_equal(extended.gaps, direct.gaps)
            and np.array_equal(extended.sorted_gaps, direct.sorted_gaps)
        ):
            registry.inc("reuse.parity_failures")
            raise TraceError(
                "incrementally extended reuse profile diverged from the "
                f"full refold for key {key!r}"
            )

    def _verify_mask(self, key: Hashable, llc, trace: AccessTrace, derived) -> None:
        """The mask parity oracle: the direct fold must agree bit-for-bit."""
        registry = process_metrics()
        registry.inc("mask.parity_checks")
        with span("cache.verify_mask", cat="cache", key=str(key)):
            direct = llc.hit_mask(self._flat_addrs(key, trace))
        if derived.shape != direct.shape or not np.array_equal(derived, direct):
            registry.inc("mask.parity_failures")
            raise TraceError(
                "reuse-derived hit mask diverged from the direct "
                f"simulation for {llc_signature(llc)}: "
                f"{int(np.count_nonzero(derived))} vs "
                f"{int(np.count_nonzero(direct))} hits"
            )

    def profile(
        self, key: Hashable, llc, trace: AccessTrace, hits: np.ndarray
    ) -> TraceProfile:
        """The compiled miss profile of ``(trace, llc)``, folded once.

        Third artifact of the lattice (see :mod:`repro.sim.profilepack`):
        keyed like hit masks by ``(trace key, LLC geometry)``, because the
        profile depends on the hit mask but **not** on placement — every
        placement cell sharing the key prices from this one profile.  A
        cached or stored profile that no longer describes the trace is
        discarded and rebuilt, mirroring the mask shape guard.
        """
        llc_sig = llc_signature(llc)
        profiles = (
            self._profiles.get(key) if self.max_traces != 0 else None
        )
        if profiles is not None:
            cached = profiles.get(llc_sig)
            if cached is not None and not cached.matches(trace):
                profiles.pop(llc_sig, None)
                self.stats.corruption_discards += 1
                _count("corruption_discards")
                cached = None
            if cached is not None:
                self.stats.profile_hits += 1
                _count("profile_hits")
                return cached
        self.stats.profile_misses += 1
        _count("profile_misses")
        profile = None
        store = self.store
        if store is not None:
            profile = store.load_profile(
                key,
                llc_sig,
                expected_phases=len(trace.phases),
                expected_accesses=trace.total_accesses,
            )
            if profile is not None:
                self.stats.store_profile_hits += 1
                _count("store_profile_hits")
        if profile is None:
            started = time.perf_counter()
            with span("cache.build_profile", cat="cache", key=str(key)):
                profile = build_profile(trace, hits)
            fold_seconds = time.perf_counter() - started
            process_metrics().observe("stage.profile_build", fold_seconds)
            # Stacked CSR is int64 [2, nnz]; like masks, profiles persist
            # independently of whether the (much larger) trace did.
            if store is not None and store.should_persist(
                16 * profile.nnz, fold_seconds
            ):
                store.save_profile(key, llc_sig, profile)
        if profiles is not None:
            profiles[llc_sig] = profile
        return profile

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._traces)

    def clear(self) -> None:
        """Drop every cached artifact (counters are kept)."""
        self._traces.clear()
        self._masks.clear()
        self._profiles.clear()
        self._reuse.clear()


def _corrupt_trace(trace: AccessTrace) -> None:
    """Flip bits in a trace's largest phase (the injected corruption).

    Corrupts a *copy* of the phase array: store-loaded phases are
    read-only mmap views whose pages are shared with other processes, so
    in-place mutation is both impossible and undesirable.  The trace's
    cached flat array is invalidated so the corruption is visible to
    ``all_addresses()`` consumers (the checksum path in particular).
    """
    phases = getattr(trace, "phases", None)
    if not phases:
        return
    phase = max(phases, key=lambda p: p.addrs.size)
    if phase.addrs.size:
        addrs = phase.addrs.copy()
        addrs[addrs.size // 2] ^= 0x5A5A
        phase.addrs = addrs
        invalidate = getattr(trace, "invalidate_flat", None)
        if callable(invalidate):
            invalidate()


_PROCESS_CACHE: TraceCache | None = None


def process_trace_cache() -> TraceCache:
    """The per-process shared cache (one per worker, one for serial runs)."""
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = TraceCache()
    return _PROCESS_CACHE
