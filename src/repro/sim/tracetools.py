"""Trace diagnostics.

Utilities for inspecting what an application's access trace looks like
before any placement decision: per-object access/byte counts, read/write
mix, sequential/random mix, and reuse statistics.  Useful for

- understanding *why* ATMem selects what it selects (the quickstart's
  "per-object selection" section, in numbers);
- sanity-checking new applications' trace emission;
- the diagnostics example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataobject import DataObject
from repro.mem.cache import LINE_SIZE
from repro.mem.trace import AccessKind, AccessTrace


@dataclass
class ObjectTraceStats:
    """Access statistics of one data object within a trace."""

    name: str
    nbytes: int
    reads: int = 0
    writes: int = 0
    random_accesses: int = 0
    sequential_accesses: int = 0
    touched_lines: set = field(default_factory=set, repr=False)

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def accesses_per_byte(self) -> float:
        """Access density — the first-order predictor of placement value."""
        return self.accesses / self.nbytes if self.nbytes else 0.0

    @property
    def footprint_bytes(self) -> int:
        """Bytes of distinct cache lines touched."""
        return len(self.touched_lines) * LINE_SIZE

    @property
    def random_fraction(self) -> float:
        total = self.accesses
        return self.random_accesses / total if total else 0.0


def analyze_trace(
    trace: AccessTrace, objects: dict[str, DataObject]
) -> dict[str, ObjectTraceStats]:
    """Aggregate per-object statistics over a trace."""
    ordered = sorted(objects.values(), key=lambda o: o.base_va)
    bases = np.array([o.base_va for o in ordered], dtype=np.int64)
    ends = np.array([o.end_va for o in ordered], dtype=np.int64)
    stats = {
        o.name: ObjectTraceStats(name=o.name, nbytes=o.nbytes) for o in ordered
    }
    for phase in trace:
        slot = np.searchsorted(bases, phase.addrs, side="right") - 1
        valid = slot >= 0
        valid[valid] &= phase.addrs[valid] < ends[slot[valid]]
        for s in np.unique(slot[valid]):
            obj = ordered[int(s)]
            entry = stats[obj.name]
            inside = phase.addrs[valid & (slot == s)]
            n = int(inside.size)
            if phase.is_write:
                entry.writes += n
            else:
                entry.reads += n
            if phase.kind is AccessKind.RANDOM:
                entry.random_accesses += n
            else:
                entry.sequential_accesses += n
            entry.touched_lines.update(np.unique(inside >> 6).tolist())
    return stats


def format_trace_report(stats: dict[str, ObjectTraceStats]) -> str:
    """Human-readable table of per-object trace statistics."""
    header = (
        f"{'object':14s} {'KiB':>8s} {'accesses':>10s} {'acc/B':>8s} "
        f"{'writes%':>8s} {'random%':>8s} {'footprint%':>10s}"
    )
    lines = [header, "-" * len(header)]
    for entry in sorted(
        stats.values(), key=lambda e: e.accesses_per_byte, reverse=True
    ):
        writes_pct = 100.0 * entry.writes / entry.accesses if entry.accesses else 0.0
        foot_pct = (
            100.0 * min(1.0, entry.footprint_bytes / entry.nbytes)
            if entry.nbytes
            else 0.0
        )
        lines.append(
            f"{entry.name:14s} {entry.nbytes / 1024:8.1f} {entry.accesses:10d} "
            f"{entry.accesses_per_byte:8.3f} {writes_pct:8.1f} "
            f"{100 * entry.random_fraction:8.1f} {foot_pct:10.1f}"
        )
    return "\n".join(lines)
