"""Result containers for simulated runs."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RunCost:
    """Aggregated cost of one application run (one trace)."""

    seconds: float = 0.0
    n_accesses: int = 0
    n_misses: int = 0
    tlb_misses: int = 0
    miss_by_tier: dict[int, int] = field(default_factory=dict)
    #: Time per phase label (e.g. "rank-gather"), for breakdown reports.
    seconds_by_label: dict[str, float] = field(default_factory=dict)

    def add_phase(
        self,
        seconds: float,
        n_accesses: int,
        n_misses: int,
        miss_by_tier: dict[int, int],
        tlb_misses: int = 0,
        label: str = "",
    ) -> None:
        """Fold one phase's cost into the run total."""
        self.seconds += seconds
        self.n_accesses += n_accesses
        self.n_misses += n_misses
        self.tlb_misses += tlb_misses
        for tier, count in miss_by_tier.items():
            self.miss_by_tier[tier] = self.miss_by_tier.get(tier, 0) + count
        if label:
            self.seconds_by_label[label] = (
                self.seconds_by_label.get(label, 0.0) + seconds
            )

    def breakdown(self, top: int = 10) -> list[tuple[str, float]]:
        """The costliest phase labels, descending."""
        ranked = sorted(
            self.seconds_by_label.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:top]

    @property
    def miss_rate(self) -> float:
        """LLC miss rate of the run."""
        return self.n_misses / self.n_accesses if self.n_accesses else 0.0
