"""Compiled reuse profiles: one pass over a trace, masks for every LLC size.

The fourth cached artifact of the lattice ``trace -> reuse profile ->
LLC hit mask -> miss profile``.  Where a hit mask is keyed by
``(trace, llc_sig)`` and a miss profile by the same pair, a
:class:`ReuseProfile` is keyed by the **trace alone** (plus the line
granularity): the working-set model's reuse time gaps depend only on
the address stream and the cache-line size, never on capacity.  The
profile therefore holds

- ``gaps`` — per-access reuse time gaps in program order (the output of
  :func:`repro.mem.cache.reuse_time_gaps`, with
  :data:`repro.mem.cache.GAP_COLD` marking first occurrences), and
- ``sorted_gaps`` — the same gaps ascending, and
- the window curve (prefix sums + ``f(W)`` samples), persisted with the
  gap rows since artifact v2 so store-loaded profiles skip the
  per-process float64 cast+cumsum entirely.

From the cached curve any capacity's working-set window W\\* solves in
O(log N) (:func:`repro.mem.cache.solve_window_curve` — no re-sort), and
the hit mask for any LLC geometry is one vectorised compare
``gaps <= W*``.  A whole fig9/fig10 capacity sweep derives all its
masks from *one* O(N log N) fold over the trace, and miss-ratio curves
come for free from the sorted gaps.

Bit-exactness is the contract: :meth:`ReuseProfile.hit_mask` performs
the *identical* float64 operations as
:meth:`repro.mem.cache.WorkingSetCache.hit_mask` (same sort → float64
cast → prefix curve → closed-form solve → compare), so derived masks
are indistinguishable from direct ones.  The direct path remains the
parity oracle — ``REPRO_VERIFY_MASK=1`` makes
:class:`repro.sim.tracecache.TraceCache` recompute every derived mask
directly and raise on divergence (see DESIGN.md section 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TraceError
from repro.mem.cache import (
    GAP_COLD,
    LINE_SIZE,
    WorkingSetCache,
    dense_table_span,
    gap_window_curve,
    reuse_time_gaps,
    solve_window_curve,
)
from repro.mem.trace import AccessTrace

#: Version stamp carried by serialized reuse profiles (repro.sim.tracestore).
#: v2 added the window-curve columns (``prefix``/``f_at_gap`` float64) so
#: a store-loaded profile answers ``window()``/``hit_mask()`` without the
#: per-process cast+cumsum; v1 entries (gap rows only) are rejected and
#: rebuilt, never migrated.
REUSE_FORMAT = 2


def derivable(llc) -> bool:
    """Whether ``llc``'s hit masks can be derived from a reuse profile.

    Exactly :class:`WorkingSetCache` (not a subclass — a subclass could
    override ``hit_mask`` and break the bit-exactness contract).  The
    direct-mapped and set-associative simulators model conflict misses,
    which reuse gaps cannot see.
    """
    return type(llc) is WorkingSetCache


@dataclass
class ReuseProfile:
    """Per-access reuse gaps plus the sorted-gap window curve.

    The window curve (``prefix``/``f_at_gap`` float64 arrays) either
    arrives pre-computed — a v2 store entry persists it, so a loaded
    profile answers ``window()``/``hit_mask()`` with zero per-process
    float work — or is materialised lazily after an in-process fold and
    cached on the instance.  The float64 view of the sorted gaps (used
    only for miss-ratio counting) stays lazy in both cases.

    ``_fold_state`` optionally carries the fold's dense last-seen table
    (``(base_line, table)``, global stream positions, ``-1`` = never
    seen) so :meth:`extend` can fold *only* a new phase's delta and
    merge, instead of refolding the whole stream.  The state is
    in-process only — it is never serialized, so store-loaded profiles
    answer :attr:`can_extend` with ``False`` and extension falls back to
    a full refold.
    """

    gaps: np.ndarray  # int64 [n], program order; GAP_COLD = first touch
    sorted_gaps: np.ndarray  # int64 [n], ascending
    line_size: int = LINE_SIZE
    _sorted_f: np.ndarray | None = field(default=None, repr=False, compare=False)
    _prefix: np.ndarray | None = field(default=None, repr=False, compare=False)
    _f_at_gap: np.ndarray | None = field(default=None, repr=False, compare=False)
    _fold_state: tuple[int, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def n(self) -> int:
        """Accesses described by this profile."""
        return int(self.gaps.size)

    def matches(self, trace: AccessTrace) -> bool:
        """Whether this profile describes ``trace`` (shape-level check).

        Cheap by design, like :meth:`TraceProfile.matches` — content
        trust comes from the CRC at the store boundary and the content
        key at the cache boundary.
        """
        return self.n == trace.total_accesses

    # ------------------------------------------------------------------
    # the cached window curve
    # ------------------------------------------------------------------
    def _sorted_float(self) -> np.ndarray:
        if self._sorted_f is None:
            self._sorted_f = self.sorted_gaps.astype(np.float64)
        return self._sorted_f

    def _curve(self) -> tuple[np.ndarray, np.ndarray]:
        if self._f_at_gap is None:
            # Identical to WorkingSetCache.solve_window's preamble:
            # ascending gaps cast to float64, then the prefix curve.
            self._prefix, self._f_at_gap = gap_window_curve(
                self._sorted_float()
            )
        return self._prefix, self._f_at_gap

    def window(self, capacity_lines: int) -> float:
        """The working-set window W* for one capacity, in O(log N)."""
        prefix, f_at_gap = self._curve()
        return solve_window_curve(prefix, f_at_gap, capacity_lines)

    # ------------------------------------------------------------------
    # incremental phase extension
    # ------------------------------------------------------------------
    @property
    def can_extend(self) -> bool:
        """Whether this profile carries fold state for :meth:`extend`."""
        return self._fold_state is not None

    def extend(self, delta_addrs: np.ndarray) -> "ReuseProfile":
        """A new profile covering this stream plus ``delta_addrs``.

        Folds **only the delta**: intra-delta gaps come from one fold
        over the delta alone (gap = position difference, invariant under
        the shared ``base_n`` offset), delta accesses whose line was
        last seen in the base stream are patched from the carried
        last-seen table, and the sorted row is a searchsorted merge —
        bit-identical to ``np.sort`` of the concatenation, without the
        O((N+d) log (N+d)) re-sort.  The base profile is never mutated
        (it stays cached under its own key); the result carries its own
        forwarded table so extensions chain per phase.

        Raises :class:`TraceError` when the profile has no fold state
        (store-loaded profiles don't) — callers should check
        :attr:`can_extend` and fall back to a full refold.
        """
        if self._fold_state is None:
            raise TraceError(
                "reuse profile carries no fold state; refold instead"
            )
        addrs = np.ascontiguousarray(delta_addrs, dtype=np.int64)
        if addrs.size == 0:
            return ReuseProfile(
                gaps=self.gaps,
                sorted_gaps=self.sorted_gaps,
                line_size=self.line_size,
                _sorted_f=self._sorted_f,
                _prefix=self._prefix,
                _f_at_gap=self._f_at_gap,
                _fold_state=self._fold_state,
            )
        shift = int(self.line_size).bit_length() - 1
        lines = addrs >> shift
        base_n = self.n
        base_line, table = self._fold_state
        # Intra-delta gaps; GAP_COLD marks first-in-delta touches.
        delta_gaps = reuse_time_gaps(addrs, shift)
        cold = np.nonzero(delta_gaps == GAP_COLD)[0]
        if cold.size:
            idx = lines[cold] - base_line
            in_range = (idx >= 0) & (idx < table.size)
            prev = np.full(cold.size, -1, dtype=np.int64)
            prev[in_range] = table[idx[in_range]]
            seen = prev >= 0
            delta_gaps[cold[seen]] = base_n + cold[seen] - prev[seen]
        gaps = np.concatenate([np.asarray(self.gaps), delta_gaps])
        delta_sorted = np.sort(delta_gaps)
        positions = np.searchsorted(self.sorted_gaps, delta_sorted)
        sorted_gaps = np.insert(
            np.asarray(self.sorted_gaps), positions, delta_sorted
        )
        return ReuseProfile(
            gaps=gaps,
            sorted_gaps=sorted_gaps,
            line_size=self.line_size,
            _fold_state=self._forwarded_state(lines, base_n),
        )

    def _forwarded_state(
        self, lines: np.ndarray, base_n: int
    ) -> tuple[int, np.ndarray] | None:
        """The last-seen table grown over the delta's lines (a copy)."""
        base_line, table = self._fold_state
        new_base = min(base_line, int(lines.min()))
        new_top = max(base_line + table.size, int(lines.max()) + 1)
        if new_top - new_base > max(1024, 8 * (base_n + lines.size)):
            return None  # delta too sparse: stop chaining, keep correctness
        new_table = np.full(new_top - new_base, -1, dtype=np.int64)
        offset = base_line - new_base
        new_table[offset : offset + table.size] = table
        np.maximum.at(
            new_table,
            lines - new_base,
            np.arange(base_n, base_n + lines.size),
        )
        return new_base, new_table

    # ------------------------------------------------------------------
    # derived masks and miss ratios
    # ------------------------------------------------------------------
    def hit_mask(self, capacity_lines: int) -> np.ndarray:
        """Boolean hit mask for a working-set LLC of ``capacity_lines``.

        Bit-exact with :meth:`WorkingSetCache.hit_mask` on the same
        address stream — the same window solve, the same compares.
        """
        if self.n == 0:
            return np.empty(0, dtype=bool)
        window = self.window(capacity_lines)
        if np.isinf(window):
            return self.gaps < GAP_COLD
        return self.gaps <= window

    def hit_mask_for(self, llc) -> np.ndarray:
        """Derive ``llc.hit_mask(...)`` without touching the trace.

        Raises :class:`TraceError` when ``llc`` is not a plain
        :class:`WorkingSetCache` or uses a different line granularity —
        callers must fall back to the direct simulation then.
        """
        if not derivable(llc):
            raise TraceError(
                f"cannot derive {type(llc).__name__} masks from a reuse profile"
            )
        if llc.line_size != self.line_size:
            raise TraceError(
                f"reuse profile built at line size {self.line_size}, "
                f"LLC uses {llc.line_size}"
            )
        return self.hit_mask(llc.capacity_lines)

    def miss_ratio(self, capacity_lines: int) -> float:
        """Miss ratio at one capacity, in O(log N) — no mask needed."""
        n = self.n
        if n == 0:
            return 0.0
        window = self.window(capacity_lines)
        if np.isinf(window):
            # Only cold misses: every finite gap hits.
            hits = int(np.searchsorted(self.sorted_gaps, GAP_COLD, side="left"))
        else:
            # Mirrors the float64 `gaps <= window` compare of hit_mask.
            hits = int(
                np.searchsorted(self._sorted_float(), window, side="right")
            )
        return 1.0 - hits / n

    def miss_ratio_curve(self, capacities_lines) -> np.ndarray:
        """Miss ratios for a whole capacity sweep (float64, same order)."""
        return np.array(
            [self.miss_ratio(int(c)) for c in np.asarray(capacities_lines)],
            dtype=np.float64,
        )


def _fold_state_of(lines: np.ndarray) -> tuple[int, np.ndarray] | None:
    """The dense last-seen table after folding ``lines``, or ``None``.

    Built vectorised (``np.maximum.at`` keeps the *latest* position per
    line slot) so the state exists even when the fold itself ran on the
    argsort path — extendability does not depend on numba.  ``None``
    when the stream is too sparse for a dense table.
    """
    geometry = dense_table_span(lines)
    if geometry is None:
        return None
    base, span = geometry
    table = np.full(span, -1, dtype=np.int64)
    np.maximum.at(
        table, lines - base, np.arange(lines.size, dtype=np.int64)
    )
    return base, table


def build_reuse_profile(
    addrs: np.ndarray, line_size: int = LINE_SIZE, *, with_state: bool = True
) -> ReuseProfile:
    """Fold one address stream into a :class:`ReuseProfile`.

    One linear pass (or one vectorised stable argsort — see
    :func:`repro.mem.cache.reuse_time_gaps`) plus one ``np.sort`` of the
    gaps — paid once per trace and amortised over every LLC capacity
    derived from the result.  With ``with_state`` (the default) the
    profile also carries the fold's last-seen table so later phases can
    :meth:`~ReuseProfile.extend` it; pass ``False`` for one-shot folds
    that will never grow (saves the table's memory).
    """
    if line_size <= 0 or line_size & (line_size - 1):
        raise TraceError(f"line size must be a power of two, got {line_size}")
    addrs = np.asarray(addrs, dtype=np.int64)
    shift = line_size.bit_length() - 1
    gaps = reuse_time_gaps(addrs, shift)
    state = None
    if with_state and addrs.size:
        state = _fold_state_of(addrs >> shift)
    return ReuseProfile(
        gaps=gaps,
        sorted_gaps=np.sort(gaps),
        line_size=line_size,
        _fold_state=state,
    )


def fold_reuse_chunks(
    chunks, line_size: int = LINE_SIZE
) -> ReuseProfile:
    """Fold an address stream delivered in program-order chunks.

    The streaming twin of :func:`build_reuse_profile`: the first
    non-empty chunk seeds the profile and every later chunk arrives via
    :meth:`ReuseProfile.extend` — bit-identical to the one-shot fold of
    the concatenation (extend's contract), without ever materialising
    the flat stream.  When a chunk is too sparse for the dense last-seen
    table the chain stops carrying state (:attr:`~ReuseProfile.
    can_extend` goes false) and the fold falls back to concatenating the
    chunks seen so far and refolding once — correctness over memory in
    the pathological case.  Chunks are retained as views, so the
    streaming path allocates nothing beyond the fold's own rows.
    """
    profile: ReuseProfile | None = None
    seen: list[np.ndarray] = []
    chained = True
    for chunk in chunks:
        chunk = np.ascontiguousarray(chunk, dtype=np.int64)
        if chunk.size == 0:
            continue
        seen.append(chunk)
        if not chained:
            continue
        if profile is None:
            profile = build_reuse_profile(chunk, line_size)
        elif profile.can_extend:
            profile = profile.extend(chunk)
        else:
            chained = False
    if not seen:
        return build_reuse_profile(np.empty(0, dtype=np.int64), line_size)
    if not chained:
        return build_reuse_profile(np.concatenate(seen), line_size)
    return profile


def validate_reuse(profile: ReuseProfile) -> None:
    """Structural validation; raises :class:`TraceError` on any defect.

    Run at the store boundary: a deserialised profile must be internally
    consistent before masks are derived from it.  Checks are O(N) single
    passes (no re-sort): the sorted row must be an ascending arrangement
    with the same extremes and cold count as the program-order row, and
    every gap must be at least 1 (a line cannot be reused in zero time).
    """
    gaps, sorted_gaps = profile.gaps, profile.sorted_gaps
    if gaps.ndim != 1 or sorted_gaps.shape != gaps.shape:
        raise TraceError(
            f"reuse rows disagree: {gaps.shape} vs {sorted_gaps.shape}"
        )
    if profile.line_size <= 0 or profile.line_size & (profile.line_size - 1):
        raise TraceError(
            f"reuse profile line size {profile.line_size} is not a power of two"
        )
    if gaps.size == 0:
        return
    if np.any(sorted_gaps[1:] < sorted_gaps[:-1]):
        raise TraceError("sorted reuse gaps must be non-decreasing")
    if int(sorted_gaps[0]) < 1:
        raise TraceError("reuse gaps must be >= 1 access")
    if int(sorted_gaps[0]) != int(gaps.min()) or int(sorted_gaps[-1]) != int(
        gaps.max()
    ):
        raise TraceError("sorted reuse gaps do not span the program-order gaps")
    n_cold = int(np.count_nonzero(gaps == GAP_COLD))
    if int(np.count_nonzero(sorted_gaps == GAP_COLD)) != n_cold:
        raise TraceError("cold-miss counts disagree between reuse rows")
    if n_cold == 0:
        raise TraceError("a non-empty trace must have at least one cold miss")
    _validate_curve(profile)


def _validate_curve(profile: ReuseProfile) -> None:
    """Cheap invariants of an attached (persisted) window curve.

    Deliberately O(1) beyond shape checks: the CRC at the store boundary
    guards content, and re-deriving the curve here would pay exactly the
    cast+cumsum that persisting it exists to avoid.  The endpoint
    identities (``prefix[0] = 0``, ``f(g_last) = prefix[n]``, and the
    last prefix step equalling the largest gap) catch layout and
    row-ordering mistakes without touching the interior.
    """
    prefix, f_at_gap = profile._prefix, profile._f_at_gap
    if prefix is None and f_at_gap is None:
        return
    if prefix is None or f_at_gap is None:
        raise TraceError("reuse curve rows must be attached together")
    n = profile.n
    if prefix.shape != (n + 1,) or f_at_gap.shape != (n,):
        raise TraceError(
            f"reuse curve rows have shapes {prefix.shape}/{f_at_gap.shape}, "
            f"expected ({n + 1},)/({n},)"
        )
    if prefix.dtype != np.float64 or f_at_gap.dtype != np.float64:
        raise TraceError("reuse curve rows must be float64")
    if n == 0:
        if prefix[0] != 0.0:
            raise TraceError("empty reuse curve must start at zero")
        return
    last_gap = float(profile.sorted_gaps[-1])
    if (
        prefix[0] != 0.0
        or f_at_gap[-1] != prefix[-1]
        or prefix[-1] != prefix[-2] + last_gap
    ):
        raise TraceError("reuse curve endpoints disagree with the gap rows")


# ----------------------------------------------------------------------
# columnar (de)serialisation, used by repro.sim.tracestore
# ----------------------------------------------------------------------
def reuse_to_columnar(profile: ReuseProfile) -> tuple[np.ndarray, dict]:
    """Split a reuse profile into one dense array plus a JSON record.

    Artifact v2 is one ``float64 [4, n + 1]`` array:

    ======  =======================  ==========================
    row     columns ``[:n]``         trailing column
    ======  =======================  ==========================
    0       ``gaps`` (int64 bits)    zero padding
    1       ``sorted_gaps`` (bits)   zero padding
    2       ``prefix[:n]``           ``prefix[n]``
    3       ``f_at_gap``             zero padding
    ======  =======================  ==========================

    The gap rows keep their exact int64 bit patterns via ``.view``
    (``GAP_COLD`` does not survive a float64 *value* cast); the curve
    rows are genuine float64.  Persisting the curve costs 2x the v1
    bytes but removes the per-process cast+cumsum from every store-warm
    ``window()``/``hit_mask()`` — which is the whole point of the v2
    artifact.
    """
    n = profile.n
    prefix, f_at_gap = profile._curve()
    packed = np.zeros((4, n + 1), dtype=np.float64)
    packed[0, :n] = np.ascontiguousarray(
        profile.gaps, dtype=np.int64
    ).view(np.float64)
    packed[1, :n] = np.ascontiguousarray(
        profile.sorted_gaps, dtype=np.int64
    ).view(np.float64)
    packed[2, :] = prefix
    packed[3, :n] = f_at_gap
    record = {
        "reuse_format": REUSE_FORMAT,
        "n": n,
        "line_size": int(profile.line_size),
    }
    return packed, record


def reuse_from_columnar(stacked: np.ndarray, record: dict) -> ReuseProfile:
    """Rebuild (and validate) a reuse profile from its serialized halves.

    ``stacked`` may be a read-only mmap view; the gap rows stay
    zero-copy int64 bit-views into its (C-contiguous) row slices, and
    the curve rows attach pre-computed so no float work happens at load.
    Raises :class:`TraceError` on any structural defect — including v1
    entries, which fail the ``reuse_format`` / shape checks — so callers
    can reject the store entry and rebuild.
    """
    try:
        n = int(record["n"])
        line_size = int(record["line_size"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"malformed reuse record: {exc}") from exc
    if int(record.get("reuse_format", -1)) != REUSE_FORMAT:
        raise TraceError("reuse format version mismatch")
    stacked = np.asarray(stacked)
    if stacked.dtype != np.float64 or stacked.shape != (4, n + 1):
        raise TraceError(
            f"reuse array has dtype/shape {stacked.dtype}/{stacked.shape}, "
            f"expected float64 (4, {n + 1})"
        )
    gaps = np.ascontiguousarray(stacked[0, :n]).view(np.int64)
    sorted_gaps = np.ascontiguousarray(stacked[1, :n]).view(np.int64)
    profile = ReuseProfile(
        gaps=gaps,
        sorted_gaps=sorted_gaps,
        line_size=line_size,
        _prefix=stacked[2],
        _f_at_gap=stacked[3, :n],
    )
    validate_reuse(profile)
    return profile
