"""Compiled reuse profiles: one pass over a trace, masks for every LLC size.

The fourth cached artifact of the lattice ``trace -> reuse profile ->
LLC hit mask -> miss profile``.  Where a hit mask is keyed by
``(trace, llc_sig)`` and a miss profile by the same pair, a
:class:`ReuseProfile` is keyed by the **trace alone** (plus the line
granularity): the working-set model's reuse time gaps depend only on
the address stream and the cache-line size, never on capacity.  The
profile therefore holds

- ``gaps`` — per-access reuse time gaps in program order (the output of
  :func:`repro.mem.cache.reuse_time_gaps`, with
  :data:`repro.mem.cache.GAP_COLD` marking first occurrences), and
- ``sorted_gaps`` — the same gaps ascending, from which the window
  curve (prefix sums + ``f(W)`` samples) is derived lazily.

From the cached curve any capacity's working-set window W\\* solves in
O(log N) (:func:`repro.mem.cache.solve_window_curve` — no re-sort), and
the hit mask for any LLC geometry is one vectorised compare
``gaps <= W*``.  A whole fig9/fig10 capacity sweep derives all its
masks from *one* O(N log N) fold over the trace, and miss-ratio curves
come for free from the sorted gaps.

Bit-exactness is the contract: :meth:`ReuseProfile.hit_mask` performs
the *identical* float64 operations as
:meth:`repro.mem.cache.WorkingSetCache.hit_mask` (same sort → float64
cast → prefix curve → closed-form solve → compare), so derived masks
are indistinguishable from direct ones.  The direct path remains the
parity oracle — ``REPRO_VERIFY_MASK=1`` makes
:class:`repro.sim.tracecache.TraceCache` recompute every derived mask
directly and raise on divergence (see DESIGN.md section 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TraceError
from repro.mem.cache import (
    GAP_COLD,
    LINE_SIZE,
    WorkingSetCache,
    gap_window_curve,
    reuse_time_gaps,
    solve_window_curve,
)
from repro.mem.trace import AccessTrace

#: Version stamp carried by serialized reuse profiles (repro.sim.tracestore).
REUSE_FORMAT = 1


def derivable(llc) -> bool:
    """Whether ``llc``'s hit masks can be derived from a reuse profile.

    Exactly :class:`WorkingSetCache` (not a subclass — a subclass could
    override ``hit_mask`` and break the bit-exactness contract).  The
    direct-mapped and set-associative simulators model conflict misses,
    which reuse gaps cannot see.
    """
    return type(llc) is WorkingSetCache


@dataclass
class ReuseProfile:
    """Per-access reuse gaps plus the sorted-gap window curve.

    The window curve (``prefix``/``f_at_gap`` float64 arrays, plus the
    float64 view of the sorted gaps used for miss-ratio counting) is
    materialised lazily and cached on the instance, so a profile loaded
    from the store pays the float conversion once per process and every
    capacity after that is O(log N).
    """

    gaps: np.ndarray  # int64 [n], program order; GAP_COLD = first touch
    sorted_gaps: np.ndarray  # int64 [n], ascending
    line_size: int = LINE_SIZE
    _sorted_f: np.ndarray | None = field(default=None, repr=False, compare=False)
    _prefix: np.ndarray | None = field(default=None, repr=False, compare=False)
    _f_at_gap: np.ndarray | None = field(default=None, repr=False, compare=False)

    @property
    def n(self) -> int:
        """Accesses described by this profile."""
        return int(self.gaps.size)

    def matches(self, trace: AccessTrace) -> bool:
        """Whether this profile describes ``trace`` (shape-level check).

        Cheap by design, like :meth:`TraceProfile.matches` — content
        trust comes from the CRC at the store boundary and the content
        key at the cache boundary.
        """
        return self.n == trace.total_accesses

    # ------------------------------------------------------------------
    # the cached window curve
    # ------------------------------------------------------------------
    def _curve(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._f_at_gap is None:
            # Identical to WorkingSetCache.solve_window's preamble:
            # ascending gaps cast to float64, then the prefix curve.
            self._sorted_f = self.sorted_gaps.astype(np.float64)
            self._prefix, self._f_at_gap = gap_window_curve(self._sorted_f)
        return self._sorted_f, self._prefix, self._f_at_gap

    def window(self, capacity_lines: int) -> float:
        """The working-set window W* for one capacity, in O(log N)."""
        _, prefix, f_at_gap = self._curve()
        return solve_window_curve(prefix, f_at_gap, capacity_lines)

    # ------------------------------------------------------------------
    # derived masks and miss ratios
    # ------------------------------------------------------------------
    def hit_mask(self, capacity_lines: int) -> np.ndarray:
        """Boolean hit mask for a working-set LLC of ``capacity_lines``.

        Bit-exact with :meth:`WorkingSetCache.hit_mask` on the same
        address stream — the same window solve, the same compares.
        """
        if self.n == 0:
            return np.empty(0, dtype=bool)
        window = self.window(capacity_lines)
        if np.isinf(window):
            return self.gaps < GAP_COLD
        return self.gaps <= window

    def hit_mask_for(self, llc) -> np.ndarray:
        """Derive ``llc.hit_mask(...)`` without touching the trace.

        Raises :class:`TraceError` when ``llc`` is not a plain
        :class:`WorkingSetCache` or uses a different line granularity —
        callers must fall back to the direct simulation then.
        """
        if not derivable(llc):
            raise TraceError(
                f"cannot derive {type(llc).__name__} masks from a reuse profile"
            )
        if llc.line_size != self.line_size:
            raise TraceError(
                f"reuse profile built at line size {self.line_size}, "
                f"LLC uses {llc.line_size}"
            )
        return self.hit_mask(llc.capacity_lines)

    def miss_ratio(self, capacity_lines: int) -> float:
        """Miss ratio at one capacity, in O(log N) — no mask needed."""
        n = self.n
        if n == 0:
            return 0.0
        window = self.window(capacity_lines)
        sorted_f, _, _ = self._curve()
        if np.isinf(window):
            # Only cold misses: every finite gap hits.
            hits = int(np.searchsorted(self.sorted_gaps, GAP_COLD, side="left"))
        else:
            # Mirrors the float64 `gaps <= window` compare of hit_mask.
            hits = int(np.searchsorted(sorted_f, window, side="right"))
        return 1.0 - hits / n

    def miss_ratio_curve(self, capacities_lines) -> np.ndarray:
        """Miss ratios for a whole capacity sweep (float64, same order)."""
        return np.array(
            [self.miss_ratio(int(c)) for c in np.asarray(capacities_lines)],
            dtype=np.float64,
        )


def build_reuse_profile(
    addrs: np.ndarray, line_size: int = LINE_SIZE
) -> ReuseProfile:
    """Fold one address stream into a :class:`ReuseProfile`.

    One vectorised stable argsort over line numbers (the
    :func:`repro.mem.cache.reuse_time_gaps` fold) plus one ``np.sort``
    of the gaps — paid once per trace and amortised over every LLC
    capacity derived from the result.
    """
    if line_size <= 0 or line_size & (line_size - 1):
        raise TraceError(f"line size must be a power of two, got {line_size}")
    gaps = reuse_time_gaps(addrs, line_size.bit_length() - 1)
    return ReuseProfile(
        gaps=gaps, sorted_gaps=np.sort(gaps), line_size=line_size
    )


def validate_reuse(profile: ReuseProfile) -> None:
    """Structural validation; raises :class:`TraceError` on any defect.

    Run at the store boundary: a deserialised profile must be internally
    consistent before masks are derived from it.  Checks are O(N) single
    passes (no re-sort): the sorted row must be an ascending arrangement
    with the same extremes and cold count as the program-order row, and
    every gap must be at least 1 (a line cannot be reused in zero time).
    """
    gaps, sorted_gaps = profile.gaps, profile.sorted_gaps
    if gaps.ndim != 1 or sorted_gaps.shape != gaps.shape:
        raise TraceError(
            f"reuse rows disagree: {gaps.shape} vs {sorted_gaps.shape}"
        )
    if profile.line_size <= 0 or profile.line_size & (profile.line_size - 1):
        raise TraceError(
            f"reuse profile line size {profile.line_size} is not a power of two"
        )
    if gaps.size == 0:
        return
    if np.any(sorted_gaps[1:] < sorted_gaps[:-1]):
        raise TraceError("sorted reuse gaps must be non-decreasing")
    if int(sorted_gaps[0]) < 1:
        raise TraceError("reuse gaps must be >= 1 access")
    if int(sorted_gaps[0]) != int(gaps.min()) or int(sorted_gaps[-1]) != int(
        gaps.max()
    ):
        raise TraceError("sorted reuse gaps do not span the program-order gaps")
    n_cold = int(np.count_nonzero(gaps == GAP_COLD))
    if int(np.count_nonzero(sorted_gaps == GAP_COLD)) != n_cold:
        raise TraceError("cold-miss counts disagree between reuse rows")
    if n_cold == 0:
        raise TraceError("a non-empty trace must have at least one cold miss")


# ----------------------------------------------------------------------
# columnar (de)serialisation, used by repro.sim.tracestore
# ----------------------------------------------------------------------
def reuse_to_columnar(profile: ReuseProfile) -> tuple[np.ndarray, dict]:
    """Split a reuse profile into one dense array plus a JSON record.

    The array stacks ``gaps`` (row 0) and ``sorted_gaps`` (row 1) as
    ``int64 [2, n]`` — storing the sorted row costs 2x the bytes but
    saves every reader the O(N log N) re-sort, which is the whole point
    of the artifact.
    """
    stacked = np.vstack([profile.gaps, profile.sorted_gaps]).astype(np.int64)
    record = {
        "reuse_format": REUSE_FORMAT,
        "n": profile.n,
        "line_size": int(profile.line_size),
    }
    return stacked, record


def reuse_from_columnar(stacked: np.ndarray, record: dict) -> ReuseProfile:
    """Rebuild (and validate) a reuse profile from its serialized halves.

    ``stacked`` may be a read-only mmap view; both gap rows stay
    zero-copy views into it.  Raises :class:`TraceError` on any
    structural defect, so callers can reject the store entry.
    """
    try:
        n = int(record["n"])
        line_size = int(record["line_size"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"malformed reuse record: {exc}") from exc
    if int(record.get("reuse_format", -1)) != REUSE_FORMAT:
        raise TraceError("reuse format version mismatch")
    stacked = np.asarray(stacked)
    if stacked.dtype != np.int64 or stacked.shape != (2, n):
        raise TraceError(
            f"reuse array has dtype/shape {stacked.dtype}/{stacked.shape}, "
            f"expected int64 (2, {n})"
        )
    profile = ReuseProfile(
        gaps=stacked[0], sorted_gaps=stacked[1], line_size=line_size
    )
    validate_reuse(profile)
    return profile
