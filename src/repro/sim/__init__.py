"""Simulation driver: runs applications on the simulated memory system.

- :mod:`repro.sim.executor` — charges an access trace against the LLC,
  page table, TLB, and cost model, optionally feeding the ATMem profiler.
- :mod:`repro.sim.experiment` — the paper's experiment flows: static
  placements (all-slow baseline, all-fast ideal, preferred), the full ATMem
  two-iteration flow, and the coarse-grained whole-object baseline.
- :mod:`repro.sim.metrics` — small result containers and derived metrics.
"""

from repro.sim.executor import TraceExecutor
from repro.sim.experiment import (
    AtMemRunResult,
    StaticRunResult,
    run_atmem,
    run_coarse_grained,
    run_static,
)
from repro.sim.metrics import RunCost

__all__ = [
    "AtMemRunResult",
    "RunCost",
    "StaticRunResult",
    "TraceExecutor",
    "run_atmem",
    "run_coarse_grained",
    "run_static",
]
