"""Simulation driver: runs applications on the simulated memory system.

- :mod:`repro.sim.executor` — charges an access trace against the LLC,
  page table, TLB, and cost model, optionally feeding the ATMem profiler.
- :mod:`repro.sim.experiment` — the paper's experiment flows: static
  placements (all-slow baseline, all-fast ideal, preferred), the full ATMem
  two-iteration flow, and the coarse-grained whole-object baseline.
- :mod:`repro.sim.metrics` — small result containers and derived metrics.
- :mod:`repro.sim.parallel` — the parallel experiment engine: picklable
  job specs fanned out across a process pool, with serial fallback.
- :mod:`repro.sim.tracecache` — content-keyed cache reusing deterministic
  traces and LLC hit masks across placements and sweep points.
- :mod:`repro.sim.reusepack` — compiled reuse profiles: one
  capacity-independent fold per trace from which every working-set LLC
  geometry's hit mask (and miss-ratio curve) derives in O(log N).
- :mod:`repro.sim.profilepack` — compiled miss profiles: per-(phase,
  page) histograms that price placements in O(pages) without replay.
- :mod:`repro.sim.tracestore` — persistent content-keyed store sharing
  all four artifacts across worker processes and sessions.
"""

from repro.sim.executor import TraceExecutor
from repro.sim.experiment import (
    AtMemRunResult,
    StaticRunResult,
    run_atmem,
    run_coarse_grained,
    run_static,
)
from repro.sim.metrics import RunCost
from repro.sim.parallel import (
    AppSpec,
    CellResult,
    ExperimentJobError,
    ExperimentPool,
    JobSpec,
    execute_job,
    resolve_jobs,
    run_jobs,
)
from repro.sim.tracecache import TraceCache, process_trace_cache

__all__ = [
    "AppSpec",
    "AtMemRunResult",
    "CellResult",
    "ExperimentJobError",
    "ExperimentPool",
    "JobSpec",
    "RunCost",
    "StaticRunResult",
    "TraceCache",
    "TraceExecutor",
    "execute_job",
    "process_trace_cache",
    "resolve_jobs",
    "run_atmem",
    "run_coarse_grained",
    "run_jobs",
    "run_static",
]
