"""Generic parameter-sweep driver.

The paper's Figures 9/10 sweep one analyzer parameter (epsilon); studies
of a system like ATMem routinely sweep others — tree arity, chunk count,
sampling budget, TR base threshold.  This module runs any such sweep with
one call, returning a :class:`repro.bench.report.Series` ready to render,
and is what the figure builders and the sensitivity example are built on.

A sweep point is produced by rebuilding the runtime config through a
user-supplied ``configure(value)`` function, so any knob reachable from
:class:`repro.core.runtime.RuntimeConfig` can be swept.  Configurators
derive each point's config with :func:`dataclasses.replace`, so new
config fields ride along automatically instead of being silently dropped.

Sweeps parallelise: when the app factory is a picklable
:class:`repro.sim.parallel.AppSpec`, the points fan out across an
:class:`repro.sim.parallel.ExperimentPool` (``jobs`` argument, or the
``REPRO_JOBS`` environment variable), and each worker reuses the app's
deterministic trace — plus its LLC hit mask and compiled miss profile
(:mod:`repro.sim.profilepack`) — across its points via the per-process
trace cache, so every static-placement measure segment of the sweep is
priced in O(pages) from one shared profile.  Arbitrary callables still
run serially in-process (and replay: without a content key there is no
artifact sharing to compile for).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.apps.base import GraphApp
from repro.bench.report import Series
from repro.config import PlatformConfig
from repro.core.runtime import RuntimeConfig
from repro.sim.experiment import AtMemRunResult, run_atmem
from repro.sim.parallel import AppSpec, ExperimentPool, JobSpec, resolve_jobs


@dataclass
class SweepPoint:
    """One sweep evaluation."""

    value: float
    result: AtMemRunResult
    label: str = "sweep"

    @property
    def data_ratio(self) -> float:
        return self.result.data_ratio

    @property
    def seconds(self) -> float:
        return self.result.seconds


def run_sweep(
    app_factory: Callable[[], GraphApp],
    platform: PlatformConfig,
    values: Iterable[float],
    configure: Callable[[float], RuntimeConfig],
    *,
    label: str = "sweep",
    jobs: int | None = None,
) -> list[SweepPoint]:
    """Run the ATMem flow once per parameter value.

    ``label`` tags every returned point (and flows into
    :func:`to_series`); ``jobs`` fans the points out across worker
    processes when the factory is an :class:`~repro.sim.parallel.AppSpec`.
    """
    values = [float(v) for v in values]
    if isinstance(app_factory, AppSpec):
        specs = [
            JobSpec(
                app=app_factory,
                platform=platform,
                flow="atmem",
                runtime_config=configure(value),
                value=value,
                tag=label,
            )
            for value in values
        ]
        results = ExperimentPool(resolve_jobs(jobs)).run(specs)
    else:
        results = [
            run_atmem(app_factory, platform, runtime_config=configure(value))
            for value in values
        ]
    return [
        SweepPoint(value=value, result=result, label=label)
        for value, result in zip(values, results)
    ]


def to_series(
    points: list[SweepPoint],
    *,
    title: str,
    x: str = "value",
    y: str = "seconds",
    label: str | None = None,
) -> Series:
    """Render sweep points as a Series; x/y pick SweepPoint attributes.

    Points group under their own ``label`` unless an explicit ``label``
    overrides it for the whole series.
    """
    series = Series(title=title, x_label=x, y_label=y)
    for p in points:
        series.add_point(
            label if label is not None else p.label,
            getattr(p, x) if x != "value" else p.value,
            getattr(p, y),
        )
    return series


# ----------------------------------------------------------------------
# Ready-made configurators for the knobs users actually sweep.
# ----------------------------------------------------------------------
def epsilon_configurator(base: RuntimeConfig | None = None):
    """Sweep the Eq. 5 epsilon (the Figures 9/10 knob)."""
    base = base or RuntimeConfig()

    def configure(value: float) -> RuntimeConfig:
        return dataclasses.replace(
            base, analyzer=dataclasses.replace(base.analyzer, epsilon=float(value))
        )

    return configure


def arity_configurator(base: RuntimeConfig | None = None):
    """Sweep the m-ary tree arity (Section 4.3.1)."""
    base = base or RuntimeConfig()

    def configure(value: float) -> RuntimeConfig:
        return dataclasses.replace(
            base, analyzer=dataclasses.replace(base.analyzer, m=int(value))
        )

    return configure


def chunk_cap_configurator(base: RuntimeConfig | None = None):
    """Sweep the max-chunks cap (Section 4.1's metadata trade-off)."""
    base = base or RuntimeConfig()

    def configure(value: float) -> RuntimeConfig:
        return dataclasses.replace(
            base, chunking=dataclasses.replace(base.chunking, max_chunks=int(value))
        )

    return configure


def sampling_budget_configurator(base: RuntimeConfig | None = None):
    """Sweep the per-chunk sample budget (Section 5.1's rate adaption)."""
    base = base or RuntimeConfig()

    def configure(value: float) -> RuntimeConfig:
        return dataclasses.replace(
            base,
            sampling=dataclasses.replace(
                base.sampling, samples_per_chunk=float(value)
            ),
        )

    return configure
