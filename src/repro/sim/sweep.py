"""Generic parameter-sweep driver.

The paper's Figures 9/10 sweep one analyzer parameter (epsilon); studies
of a system like ATMem routinely sweep others — tree arity, chunk count,
sampling budget, TR base threshold.  This module runs any such sweep with
one call, returning a :class:`repro.bench.report.Series` ready to render,
and is what the figure builders and the sensitivity example are built on.

A sweep point is produced by rebuilding the runtime config through a
user-supplied ``configure(value)`` function, so any knob reachable from
:class:`repro.core.runtime.RuntimeConfig` can be swept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.apps.base import GraphApp
from repro.bench.report import Series
from repro.config import PlatformConfig
from repro.core.analyzer import AnalyzerConfig
from repro.core.chunks import ChunkingPolicy
from repro.core.runtime import RuntimeConfig
from repro.core.sampling import SamplingConfig
from repro.sim.experiment import AtMemRunResult, run_atmem


@dataclass
class SweepPoint:
    """One sweep evaluation."""

    value: float
    result: AtMemRunResult

    @property
    def data_ratio(self) -> float:
        return self.result.data_ratio

    @property
    def seconds(self) -> float:
        return self.result.seconds


def run_sweep(
    app_factory: Callable[[], GraphApp],
    platform: PlatformConfig,
    values: Iterable[float],
    configure: Callable[[float], RuntimeConfig],
    *,
    label: str = "sweep",
) -> list[SweepPoint]:
    """Run the ATMem flow once per parameter value."""
    points = []
    for value in values:
        result = run_atmem(app_factory, platform, runtime_config=configure(value))
        points.append(SweepPoint(value=float(value), result=result))
    return points


def to_series(
    points: list[SweepPoint],
    *,
    title: str,
    x: str = "value",
    y: str = "seconds",
    label: str = "sweep",
) -> Series:
    """Render sweep points as a Series; x/y pick SweepPoint attributes."""
    series = Series(title=title, x_label=x, y_label=y)
    for p in points:
        series.add_point(label, getattr(p, x) if x != "value" else p.value, getattr(p, y))
    return series


# ----------------------------------------------------------------------
# Ready-made configurators for the knobs users actually sweep.
# ----------------------------------------------------------------------
def epsilon_configurator(base: RuntimeConfig | None = None):
    """Sweep the Eq. 5 epsilon (the Figures 9/10 knob)."""
    base = base or RuntimeConfig()

    def configure(value: float) -> RuntimeConfig:
        analyzer = AnalyzerConfig(
            m=base.analyzer.m,
            base_tr_threshold=base.analyzer.base_tr_threshold,
            epsilon=float(value),
            enable_promotion=base.analyzer.enable_promotion,
            local=base.analyzer.local,
        )
        return RuntimeConfig(
            chunking=base.chunking,
            analyzer=analyzer,
            sampling=base.sampling,
            migration_mechanism=base.migration_mechanism,
        )

    return configure


def arity_configurator(base: RuntimeConfig | None = None):
    """Sweep the m-ary tree arity (Section 4.3.1)."""
    base = base or RuntimeConfig()

    def configure(value: float) -> RuntimeConfig:
        analyzer = AnalyzerConfig(
            m=int(value),
            base_tr_threshold=base.analyzer.base_tr_threshold,
            epsilon=base.analyzer.epsilon,
            enable_promotion=base.analyzer.enable_promotion,
            local=base.analyzer.local,
        )
        return RuntimeConfig(
            chunking=base.chunking,
            analyzer=analyzer,
            sampling=base.sampling,
            migration_mechanism=base.migration_mechanism,
        )

    return configure


def chunk_cap_configurator(base: RuntimeConfig | None = None):
    """Sweep the max-chunks cap (Section 4.1's metadata trade-off)."""
    base = base or RuntimeConfig()

    def configure(value: float) -> RuntimeConfig:
        return RuntimeConfig(
            chunking=ChunkingPolicy(
                max_chunks=int(value),
                min_chunk_bytes=base.chunking.min_chunk_bytes,
            ),
            analyzer=base.analyzer,
            sampling=base.sampling,
            migration_mechanism=base.migration_mechanism,
        )

    return configure


def sampling_budget_configurator(base: RuntimeConfig | None = None):
    """Sweep the per-chunk sample budget (Section 5.1's rate adaption)."""
    base = base or RuntimeConfig()

    def configure(value: float) -> RuntimeConfig:
        return RuntimeConfig(
            chunking=base.chunking,
            analyzer=base.analyzer,
            sampling=SamplingConfig(
                samples_per_chunk=float(value),
                reuse_factor=base.sampling.reuse_factor,
                min_period=base.sampling.min_period,
                max_period=base.sampling.max_period,
                per_sample_overhead_ns=base.sampling.per_sample_overhead_ns,
            ),
            migration_mechanism=base.migration_mechanism,
        )

    return configure
