"""Compiled trace profiles: per-(phase, page) miss histograms.

The third cached artifact of the lattice ``trace -> LLC hit mask ->
profile``.  A profile folds one (trace, hit mask) pair into

- per-phase sparse miss counts at base-page granularity (CSR layout:
  ``pages``/``counts``/``row_ptr``), and
- the per-phase metadata the cost model consumes (access count,
  read/write direction, sequential/random kind, label).

That is *everything* replay pricing looks at: the cost model charges a
phase from its miss count per tier plus the phase's direction and kind,
and a miss's tier is a pure function of its page.  Placement changes
only the page->tier map, so re-pricing a run under a new placement is an
O(pages) contraction (:meth:`repro.mem.costmodel.CostModel.price_profile`)
instead of an O(accesses) replay.

Validity conditions (enforced by the executor, documented in DESIGN.md
section 9):

- the placement must be **static for the duration of the run** — the
  profile has no program order, so a mid-run migration would price
  pre-move misses at the post-move tier;
- **no miss observer** — ATMem's profiling window needs the in-order
  miss address stream for PEBS-style sampling, which the histogram has
  destroyed;
- **no TLB counting** — translation misses depend on the per-access
  stream and the TLB's cross-run state.

Profiles are placement-independent (they only depend on the trace and
the LLC geometry), so every placement cell of a figure shares one
profile — the same sharing contract as hit masks in
:mod:`repro.sim.tracecache`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TraceError
from repro.mem.address_space import PAGE_SHIFT
from repro.mem.trace import AccessKind, AccessTrace

#: Version stamp carried by serialized profiles (see repro.sim.tracestore).
PROFILE_FORMAT = 1


@dataclass
class TraceProfile:
    """Per-(phase, page) miss counts plus per-phase pricing metadata.

    CSR-by-phase layout: phase ``p`` owns the slice
    ``row_ptr[p]:row_ptr[p+1]`` of ``pages``/``counts``.  ``pages`` holds
    absolute virtual page numbers (``addr >> PAGE_SHIFT``), ascending
    within each phase; ``counts`` holds the number of LLC misses that
    phase took on that page (always positive).
    """

    pages: np.ndarray  # int64 [nnz], absolute VPNs grouped by phase
    counts: np.ndarray  # int64 [nnz], misses per (phase, page)
    row_ptr: np.ndarray  # int64 [n_phases + 1]
    phase_n: np.ndarray  # int64 [n_phases], accesses per phase
    phase_is_write: np.ndarray  # bool [n_phases]
    phase_is_random: np.ndarray  # bool [n_phases]
    labels: tuple[str, ...] = ()
    _phase_misses: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def n_phases(self) -> int:
        return int(self.phase_n.size)

    @property
    def nnz(self) -> int:
        """Distinct (phase, page) pairs with at least one miss."""
        return int(self.pages.size)

    @property
    def total_accesses(self) -> int:
        return int(self.phase_n.sum())

    @property
    def total_misses(self) -> int:
        return int(self.counts.sum())

    @property
    def phase_misses(self) -> np.ndarray:
        """Misses per phase (row sums of the CSR counts), int64."""
        if self._phase_misses is None:
            prefix = np.zeros(self.nnz + 1, dtype=np.int64)
            np.cumsum(self.counts, out=prefix[1:])
            self._phase_misses = prefix[self.row_ptr[1:]] - prefix[self.row_ptr[:-1]]
        return self._phase_misses

    def matches(self, trace: AccessTrace) -> bool:
        """Whether this profile describes ``trace`` (shape-level check).

        Cheap by design — it runs on every cache hit.  Content-level
        trust comes from the CRC at the store boundary and from the
        content key at the cache boundary (the same contract traces and
        hit masks already rely on).
        """
        phases = trace.phases
        if self.n_phases != len(phases):
            return False
        if self.phase_n.size and int(self.phase_n.sum()) != trace.total_accesses:
            return False
        return True


def build_profile(trace: AccessTrace, hits: np.ndarray) -> TraceProfile:
    """Fold one (trace, hit mask) pair into a :class:`TraceProfile`.

    One ``np.bincount`` per phase over the page indices of that phase's
    misses — a single vectorised pass over the miss stream, paid once
    per (trace, LLC geometry) and amortised over every placement priced
    from the result.
    """
    hits = np.asarray(hits)
    if hits.shape != (trace.total_accesses,):
        raise TraceError(
            f"hit mask shape {hits.shape} does not match trace with "
            f"{trace.total_accesses} accesses"
        )
    n_phases = len(trace.phases)
    row_ptr = np.zeros(n_phases + 1, dtype=np.int64)
    phase_n = np.zeros(n_phases, dtype=np.int64)
    phase_is_write = np.zeros(n_phases, dtype=np.bool_)
    phase_is_random = np.zeros(n_phases, dtype=np.bool_)
    labels: list[str] = []
    pages_parts: list[np.ndarray] = []
    counts_parts: list[np.ndarray] = []
    offset = 0
    for i, phase in enumerate(trace.phases):
        n = len(phase)
        miss_vpns = phase.addrs[~hits[offset : offset + n]] >> PAGE_SHIFT
        offset += n
        phase_n[i] = n
        phase_is_write[i] = phase.is_write
        phase_is_random[i] = phase.kind is AccessKind.RANDOM
        labels.append(phase.label)
        nnz = 0
        if miss_vpns.size:
            lo = int(miss_vpns.min())
            binned = np.bincount(miss_vpns - lo)
            present = np.flatnonzero(binned)
            nnz = present.size
            pages_parts.append((present + lo).astype(np.int64, copy=False))
            counts_parts.append(binned[present].astype(np.int64, copy=False))
        row_ptr[i + 1] = row_ptr[i] + nnz
    pages = (
        np.concatenate(pages_parts) if pages_parts else np.empty(0, np.int64)
    )
    counts = (
        np.concatenate(counts_parts) if counts_parts else np.empty(0, np.int64)
    )
    return TraceProfile(
        pages=pages,
        counts=counts,
        row_ptr=row_ptr,
        phase_n=phase_n,
        phase_is_write=phase_is_write,
        phase_is_random=phase_is_random,
        labels=tuple(labels),
    )


def validate_profile(profile: TraceProfile) -> None:
    """Structural validation; raises :class:`TraceError` on any defect.

    Run at the store boundary: a deserialised profile must be internally
    consistent before the cost model trusts its index arithmetic.
    """
    n_phases = profile.n_phases
    row_ptr = profile.row_ptr
    if row_ptr.shape != (n_phases + 1,):
        raise TraceError(
            f"row_ptr has shape {row_ptr.shape}, expected ({n_phases + 1},)"
        )
    if n_phases and (int(row_ptr[0]) != 0 or np.any(np.diff(row_ptr) < 0)):
        raise TraceError("row_ptr must start at 0 and be non-decreasing")
    nnz = profile.nnz
    if int(row_ptr[-1]) != nnz:
        raise TraceError(
            f"row_ptr covers {int(row_ptr[-1])} entries "
            f"but the profile holds {nnz}"
        )
    if profile.counts.shape != (nnz,):
        raise TraceError("pages and counts must have the same length")
    if nnz and int(profile.counts.min()) <= 0:
        raise TraceError("profile counts must be positive")
    if nnz and int(profile.pages.min()) < 0:
        raise TraceError("profile pages must be non-negative VPNs")
    for name in ("phase_n", "phase_is_write", "phase_is_random"):
        arr = getattr(profile, name)
        if arr.shape != (n_phases,):
            raise TraceError(f"{name} has shape {arr.shape}, expected ({n_phases},)")
    if len(profile.labels) != n_phases:
        raise TraceError("labels must have one entry per phase")
    if n_phases and int(profile.phase_n.min()) < 0:
        raise TraceError("phase_n must be non-negative")


# ----------------------------------------------------------------------
# columnar (de)serialisation, used by repro.sim.tracestore
# ----------------------------------------------------------------------
def profile_to_columnar(profile: TraceProfile) -> tuple[np.ndarray, dict]:
    """Split a profile into one dense array plus a JSON-friendly record.

    The array stacks ``pages`` (row 0) and ``counts`` (row 1) as
    ``int64 [2, nnz]`` — the only part worth mmap-sharing; the per-phase
    metadata (a few hundred scalars) travels in the sidecar record.
    """
    stacked = np.vstack([profile.pages, profile.counts]).astype(np.int64)
    record = {
        "profile_format": PROFILE_FORMAT,
        "nnz": profile.nnz,
        "row_ptr": profile.row_ptr.tolist(),
        "phase_n": profile.phase_n.tolist(),
        "is_write": profile.phase_is_write.tolist(),
        "is_random": profile.phase_is_random.tolist(),
        "labels": list(profile.labels),
    }
    return stacked, record


def profile_from_columnar(stacked: np.ndarray, record: dict) -> TraceProfile:
    """Rebuild (and validate) a profile from its serialized halves.

    ``stacked`` may be a read-only mmap view; the CSR arrays stay
    zero-copy views into it.  Raises :class:`TraceError` on any
    structural defect, so callers can reject the store entry.
    """
    try:
        nnz = int(record["nnz"])
        row_ptr = np.asarray(record["row_ptr"], dtype=np.int64)
        phase_n = np.asarray(record["phase_n"], dtype=np.int64)
        phase_is_write = np.asarray(record["is_write"], dtype=np.bool_)
        phase_is_random = np.asarray(record["is_random"], dtype=np.bool_)
        labels = tuple(str(label) for label in record["labels"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"malformed profile record: {exc}") from exc
    if int(record.get("profile_format", -1)) != PROFILE_FORMAT:
        raise TraceError("profile format version mismatch")
    stacked = np.asarray(stacked)
    if stacked.dtype != np.int64 or stacked.shape != (2, nnz):
        raise TraceError(
            f"profile array has dtype/shape {stacked.dtype}/{stacked.shape}, "
            f"expected int64 (2, {nnz})"
        )
    profile = TraceProfile(
        pages=stacked[0],
        counts=stacked[1],
        row_ptr=row_ptr,
        phase_n=phase_n,
        phase_is_write=phase_is_write,
        phase_is_random=phase_is_random,
        labels=labels,
    )
    validate_profile(profile)
    return profile
