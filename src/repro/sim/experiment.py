"""The paper's experiment flows.

Three kinds of runs, all following the paper's methodology (Section 6):
profile/warm on the first iteration, measure the second iteration.

- :func:`run_static` — a fixed placement for the whole run:
  ``"slow"`` (the baseline: everything on NVM / on KNL DRAM),
  ``"fast"`` (the all-DRAM ideal on the NVM testbed),
  ``"preferred"`` (``numactl -p``: spill to the slow tier when the fast
  tier fills, the MCDRAM-p reference of Figure 6).
- :func:`run_atmem` — the full ATMem flow: register on the slow tier,
  profile iteration 1, analyze + migrate, measure iteration 2.
- :func:`run_coarse_grained` — the whole-data-structure placement baseline
  (Tahoe-style, Section 8 "data placement" related work): same profiling,
  but placement decisions at object granularity.

All flows take their deterministic traces and LLC hit masks through a
:class:`repro.sim.tracecache.TraceCache`, which (when ``REPRO_TRACE_STORE``
is set) is backed by the persistent on-disk store in
:mod:`repro.sim.tracestore` — so repeated runs of the same (app, dataset,
scale) pay the trace/mask cost once per store lifetime, not once per
process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.apps.base import GraphApp
from repro.config import PlatformConfig
from repro.core.analyzer import AnalyzerConfig, AtMemAnalyzer, PlacementDecision
from repro.core.migration import MigrationStats, MultiStageMigrator
from repro.core.runtime import AtMemRuntime, RuntimeConfig
from repro.errors import ConfigurationError
from repro.mem.address_space import PAGE_SIZE
from repro.mem.trace import AccessTrace
from repro.obs.tracer import span
from repro.sim.executor import TraceExecutor
from repro.sim.metrics import RunCost
from repro.sim.tracecache import TraceCache

PLACEMENTS = ("slow", "fast", "preferred", "interleave")


class _RunPlan:
    """Trace + hit-mask supplier for one flow's two iterations.

    Without a cache this regenerates the trace per iteration (the legacy
    behaviour, correct for any app).  With a cache, the trace and its LLC
    hit mask are computed once per content key and shared across
    iterations, placements, and sweep points — valid because ``run_once``
    is contractually idempotent and virtual addresses are assigned
    deterministically in registration order (verified by
    ``tests/test_sim_tracecache.py``).
    """

    def __init__(self, app: GraphApp, system, cache: TraceCache | None, key) -> None:
        self._app = app
        self._system = system
        self._cache = cache if key is not None else None
        self._key = key

    def next_run(self) -> tuple[AccessTrace, np.ndarray | None]:
        """The (trace, hits) pair for the next iteration."""
        if self._cache is None:
            return self._app.run_once(), None
        trace = self._cache.trace(self._key, self._app.run_once)
        hits = self._cache.hit_mask(self._key, self._system.llc, trace)
        return trace, hits

    def measure_run(self):
        """The (trace, hits, profile) triple for a measure iteration.

        The compiled profile only exists through a cache — without one
        there is no hit mask to fold, and replay is no slower than
        building a throwaway profile.  The executor ignores the profile
        whenever the run is ineligible (observer, TLB counting), so
        handing it over is always safe.
        """
        if self._cache is None:
            trace, hits = self.next_run()
            return trace, hits, None
        trace = self._cache.trace(self._key, self._app.run_once)
        hits = self._cache.hit_mask(self._key, self._system.llc, trace)
        profile = self._cache.profile(self._key, self._system.llc, trace, hits)
        return trace, hits, profile


@dataclass
class StaticRunResult:
    """Outcome of a fixed-placement run."""

    placement: str
    first_iteration: RunCost
    second_iteration: RunCost
    fast_ratio: float

    @property
    def seconds(self) -> float:
        """The paper's reported metric: second-iteration time."""
        return self.second_iteration.seconds


@dataclass
class AtMemRunResult:
    """Outcome of the full ATMem flow."""

    first_iteration: RunCost  # baseline placement, profiling on
    second_iteration: RunCost  # after migration
    decision: PlacementDecision
    migration: MigrationStats
    profiling_overhead_seconds: float
    data_ratio: float

    @property
    def seconds(self) -> float:
        return self.second_iteration.seconds

    @property
    def one_time_overhead_seconds(self) -> float:
        """Costs paid once, amortised over later iterations (Section 7.4)."""
        return self.profiling_overhead_seconds + self.migration.seconds


def _register_static(
    app: GraphApp, runtime: AtMemRuntime, placement: str
) -> None:
    """Register the app's arrays under a fixed placement policy."""
    system = runtime.system
    if placement == "slow":
        runtime.default_tier = system.slow_tier
        app.register(runtime)
        return
    if placement == "fast":
        runtime.default_tier = system.fast_tier
        app.register(runtime)
        return
    if placement == "preferred":
        # numactl -p: pages go to the fast node until it is full, then
        # silently spill — in allocation order, at page granularity.
        class _PreferredRegistry:
            def register_array(self, name: str, array: np.ndarray):
                return runtime.register_array_preferred(name, array)

        app.register(_PreferredRegistry())
        return
    if placement == "interleave":
        # numactl -i: round-robin pages across the nodes.
        class _InterleaveRegistry:
            def register_array(self, name: str, array: np.ndarray):
                return runtime.register_array_interleaved(name, array)

        app.register(_InterleaveRegistry())
        return
    raise ConfigurationError(
        f"unknown placement {placement!r}; expected one of {PLACEMENTS}"
    )


def run_static(
    app_factory: Callable[[], GraphApp],
    platform: PlatformConfig,
    placement: str,
    *,
    count_tlb: bool = False,
    trace_cache: TraceCache | None = None,
    trace_key=None,
) -> StaticRunResult:
    """Run an app twice under a fixed placement; report the second iteration."""
    system = platform.build_system()
    runtime = AtMemRuntime(system, platform=platform)
    app = app_factory()
    _register_static(app, runtime, placement)
    executor = TraceExecutor(system, count_tlb=count_tlb)
    plan = _RunPlan(app, system, trace_cache, trace_key)
    trace, hits, profile = plan.measure_run()
    first = executor.run(trace, hits=hits, profile=profile)
    trace, hits, profile = plan.measure_run()
    second = executor.run(trace, hits=hits, profile=profile)
    return StaticRunResult(
        placement=placement,
        first_iteration=first,
        second_iteration=second,
        fast_ratio=runtime.fast_tier_ratio(),
    )


def run_atmem(
    app_factory: Callable[[], GraphApp],
    platform: PlatformConfig,
    *,
    runtime_config: RuntimeConfig | None = None,
    count_tlb: bool = False,
    trace_cache: TraceCache | None = None,
    trace_key=None,
) -> AtMemRunResult:
    """The full ATMem flow (paper Section 6 methodology).

    Iteration 1 runs on the baseline placement with hardware profiling on;
    data migrates before iteration 2; iteration 2 is the reported time.
    """
    system = platform.build_system()
    runtime = AtMemRuntime(system, config=runtime_config or RuntimeConfig(), platform=platform)
    app = app_factory()
    with span("phase.register", cat="runtime", app=type(app).__name__):
        app.register(runtime)
    executor = TraceExecutor(system, count_tlb=count_tlb)
    plan = _RunPlan(app, system, trace_cache, trace_key)

    with span("phase.profile", cat="runtime"):
        runtime.atmem_profiling_start()
        trace, hits = plan.next_run()
        first = executor.run(trace, miss_observer=runtime, hits=hits)
        runtime.atmem_profiling_stop()
    decision, migration = runtime.atmem_optimize()
    with span("phase.measure", cat="runtime"):
        trace, hits, profile = plan.measure_run()
        second = executor.run(trace, hits=hits, profile=profile)
    return AtMemRunResult(
        first_iteration=first,
        second_iteration=second,
        decision=decision,
        migration=migration,
        profiling_overhead_seconds=runtime.profiling_overhead_seconds(),
        data_ratio=runtime.fast_tier_ratio(),
    )


def run_coarse_grained(
    app_factory: Callable[[], GraphApp],
    platform: PlatformConfig,
    *,
    trace_cache: TraceCache | None = None,
    trace_key=None,
) -> AtMemRunResult:
    """Whole-data-structure placement baseline (Tahoe-style).

    Uses the same profiler, but ranks whole objects by miss density and
    moves entire objects (highest density first) until the fast tier is
    full — the state of the art the paper improves on (Sections 1-2).
    """
    system = platform.build_system()
    runtime = AtMemRuntime(system, platform=platform)
    app = app_factory()
    app.register(runtime)
    executor = TraceExecutor(system)
    plan = _RunPlan(app, system, trace_cache, trace_key)

    runtime.atmem_profiling_start()
    trace, hits = plan.next_run()
    first = executor.run(trace, miss_observer=runtime, hits=hits)
    runtime.atmem_profiling_stop()

    profiler = runtime.profiler
    assert profiler is not None
    counts = profiler.estimated_miss_counts()
    density = {
        name: float(chunk_counts.sum()) / runtime.objects[name].nbytes
        for name, chunk_counts in counts.items()
    }
    migrator = MultiStageMigrator(
        system,
        migration_threads=platform.migration_threads,
        region_overhead_ns=platform.atmem_region_overhead_ns,
    )
    stats = MigrationStats(mechanism="coarse")
    for name in sorted(density, key=density.get, reverse=True):
        obj = runtime.objects[name]
        n_pages = -(-obj.nbytes // PAGE_SIZE)
        if density[name] <= 0.0:
            break
        if not system.allocators[system.fast_tier].can_allocate(n_pages):
            continue
        stats.merge(migrator.migrate(obj, [(0, obj.nbytes)], system.fast_tier))
    # Synthesise an all-or-nothing decision for reporting symmetry.
    analyzer = AtMemAnalyzer(AnalyzerConfig())
    decision = analyzer.analyze(
        counts, runtime.geometries, sampling_period=profiler.period
    )
    trace, hits, profile = plan.measure_run()
    second = executor.run(trace, hits=hits, profile=profile)
    return AtMemRunResult(
        first_iteration=first,
        second_iteration=second,
        decision=decision,
        migration=stats,
        profiling_overhead_seconds=runtime.profiling_overhead_seconds(),
        data_ratio=runtime.fast_tier_ratio(),
    )
