"""Trace executor: the simulated machine's datapath.

For each application run (one access trace):

1. the LLC model classifies every access of the run as hit or miss
   (the working-set LRU approximation evaluates the whole run at once);
2. miss addresses are resolved to their backing tier through the page table;
3. the cost model charges each phase;
4. while an ATMem profiling window is open, the miss-address stream is
   delivered to the runtime in program order (PEBS samples on LLC-miss
   events);
5. optionally, the TLB simulator counts translation misses (used for the
   Table 4 comparison).

Runs are independent (the LLC model is per-run); the TLB keeps its state
across runs on the same executor, which is what the post-migration TLB-miss
comparison needs.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.mem.system import HeterogeneousMemorySystem
from repro.mem.trace import AccessKind, AccessTrace
from repro.obs.metrics import process_metrics
from repro.obs.tracer import span
from repro.sim.metrics import RunCost


class MissObserver(Protocol):
    """Anything that wants the LLC-miss address stream (the ATMem runtime)."""

    def observe_misses(self, miss_addrs: np.ndarray) -> None: ...


class TraceExecutor:
    """Charges access traces against one simulated memory system.

    ``prefetch_coverage`` models the hardware stream prefetchers: misses of
    SEQUENTIAL phases are demand-covered by the prefetcher with this
    probability and then do not retire as PEBS LLC-miss load events, so the
    profiler never sees them.  This is why ATMem's sampling naturally
    prefers random-access data (vertex property arrays) over streaming data
    (adjacency scans) — exactly the data whose placement on the fast tier
    pays off, since streams are bandwidth-friendly on NVM while random
    gathers are not.  The execution *cost* of sequential misses is still
    charged in full (prefetching moves them off the critical path but not
    off the memory bus).
    """

    def __init__(
        self,
        system: HeterogeneousMemorySystem,
        *,
        count_tlb: bool = False,
        prefetch_coverage: float = 63 / 64,
        prefetch_mode: str = "hint",
        telemetry=None,
    ) -> None:
        if not 0.0 <= prefetch_coverage < 1.0:
            raise ValueError(
                f"prefetch_coverage must be in [0, 1), got {prefetch_coverage}"
            )
        if prefetch_mode not in ("hint", "model"):
            raise ValueError(
                f"prefetch_mode must be 'hint' or 'model', got {prefetch_mode!r}"
            )
        self.system = system
        self.count_tlb = count_tlb
        self.prefetch_coverage = prefetch_coverage
        #: "hint": phases flagged prefetchable are covered at the fixed
        #: ``prefetch_coverage`` rate.  "model": an explicit stream
        #: prefetcher detects covered misses from the addresses themselves
        #: (see :mod:`repro.mem.prefetcher`), ignoring the hints.
        self.prefetch_mode = prefetch_mode
        if prefetch_mode == "model":
            from repro.mem.prefetcher import StreamPrefetcher

            self._prefetcher = StreamPrefetcher()
        else:
            self._prefetcher = None
        #: Optional :class:`repro.mem.telemetry.TelemetryCollector` that
        #: accumulates per-tier traffic while runs are priced.
        self.telemetry = telemetry
        # Residual sampling of covered streams: deterministic stride.
        self._prefetch_stride = max(1, int(round(1.0 / (1.0 - prefetch_coverage))))

    def run(
        self,
        trace: AccessTrace,
        *,
        miss_observer: MissObserver | None = None,
        hits: np.ndarray | None = None,
    ) -> RunCost:
        """Simulate one application run described by ``trace``.

        ``hits`` optionally supplies a precomputed LLC hit mask for the
        trace (one bool per access, program order) — the mask is a pure
        function of the address stream and the LLC geometry, so callers
        that run the same trace repeatedly (see
        :mod:`repro.sim.tracecache`) can solve the working-set model once.
        """
        system = self.system
        cost = RunCost()
        if not len(trace):
            return cost
        with span(
            "executor.run", cat="executor", phases=len(trace.phases)
        ) as live:
            cost = self._run_priced(trace, miss_observer, hits)
            live.set(
                sim_seconds=cost.seconds,
                misses=cost.n_misses,
                accesses=cost.n_accesses,
            )
        registry = process_metrics()
        registry.inc("executor.runs")
        registry.inc("executor.accesses", cost.n_accesses)
        registry.inc("executor.misses", cost.n_misses)
        registry.inc("executor.sim_seconds", cost.seconds)
        return cost

    def _run_priced(
        self,
        trace: AccessTrace,
        miss_observer: MissObserver | None,
        hits: np.ndarray | None,
    ) -> RunCost:
        """The pricing loop proper (see :meth:`run` for the contract)."""
        system = self.system
        cost = RunCost()
        if hits is None:
            hits = system.llc.hit_mask(trace.all_addresses())
        offset = 0
        for phase in trace:
            n = len(phase)
            miss_mask = ~hits[offset : offset + n]
            offset += n
            miss_addrs = phase.addrs[miss_mask]
            miss_tiers = system.address_space.tiers_of(miss_addrs)
            if miss_observer is not None:
                if self._prefetcher is not None:
                    # Measured mode: the streamer decides per miss.
                    miss_observer.observe_misses(
                        self._prefetcher.residual_misses(miss_addrs)
                    )
                elif phase.prefetchable:
                    # Hint mode: only the residual of flagged phases
                    # retires as a sampleable LLC-miss load event.
                    miss_observer.observe_misses(
                        miss_addrs[:: self._prefetch_stride]
                    )
                else:
                    miss_observer.observe_misses(miss_addrs)
            tlb_misses = 0
            if self.count_tlb:
                shifts = system.address_space.map_shifts_of(phase.addrs)
                tlb_misses = system.tlb.count_misses(phase.addrs, shifts)
                tlb_misses += int(system.tlb_background_miss_rate * n)
            phase_cost = system.cost_model.phase_cost(phase, miss_mask, miss_tiers)
            if self.telemetry is not None:
                self.telemetry.record_phase(phase, phase_cost.miss_by_tier)
            cost.add_phase(
                seconds=phase_cost.seconds,
                n_accesses=phase_cost.n_accesses,
                n_misses=phase_cost.n_misses,
                miss_by_tier=phase_cost.miss_by_tier,
                tlb_misses=tlb_misses,
                label=phase.label,
            )
        return cost
