"""Trace executor: the simulated machine's datapath.

For each application run (one access trace):

1. the LLC model classifies every access of the run as hit or miss
   (the working-set LRU approximation evaluates the whole run at once);
2. miss addresses are resolved to their backing tier through the page table;
3. the cost model charges each phase;
4. while an ATMem profiling window is open, the miss-address stream is
   delivered to the runtime in program order (PEBS samples on LLC-miss
   events);
5. optionally, the TLB simulator counts translation misses (used for the
   Table 4 comparison).

Runs are independent (the LLC model is per-run); the TLB keeps its state
across runs on the same executor, which is what the post-migration TLB-miss
comparison needs.

**Compiled-profile pricing.**  When the caller supplies a
:class:`repro.sim.profilepack.TraceProfile` for the trace, the executor
prices the run from the per-(phase, page) miss histogram instead of
replaying the access stream — O(pages) instead of O(accesses), and
bit-exact with replay (see :meth:`repro.mem.costmodel.CostModel.price_profile`).
The profile path only engages when replay has nothing the histogram lost:
no miss observer (profiling windows need the in-order miss stream), no
TLB counting, and a profile that actually describes this trace.  Every
priced run increments ``pricing.profile_cells`` or
``pricing.replay_cells``; ``REPRO_PRICING=replay`` forces replay
everywhere, and ``REPRO_VERIFY_PROFILE=1`` re-replays each profile-priced
run and asserts the two costs agree (the parity oracle).

The hit mask of step 1 is itself usually *derived* rather than simulated:
the trace cache compiles a capacity-independent reuse profile — the
fourth artifact of the lattice, :mod:`repro.sim.reusepack` — and answers
every working-set LLC geometry from it with one O(log N) window solve.
``REPRO_VERIFY_MASK=1`` is the matching parity oracle on that path (see
:mod:`repro.sim.tracecache`).
"""

from __future__ import annotations

import os
import time
from typing import Protocol

import numpy as np

from repro.errors import TraceError
from repro.mem.system import HeterogeneousMemorySystem
from repro.mem.trace import AccessTrace
from repro.obs.metrics import process_metrics
from repro.obs.tracer import span
from repro.sim.metrics import RunCost
from repro.sim.profilepack import TraceProfile

#: Forces a pricing path: ``replay`` disables profile pricing process-wide.
PRICING_ENV = "REPRO_PRICING"

#: When truthy, every profile-priced run is re-priced by replay and the
#: two costs must agree to float tolerance (the parity oracle).
VERIFY_PROFILE_ENV = "REPRO_VERIFY_PROFILE"

#: Relative tolerance of the parity oracle.  Profile pricing is designed
#: to be bit-exact; the tolerance only keeps the oracle honest about its
#: contract (the ISSUE asks for float tolerance, not bit equality).
PARITY_RTOL = 1e-12


def pricing_mode() -> str:
    """``replay`` (forced) or ``auto`` from ``REPRO_PRICING``."""
    raw = os.environ.get(PRICING_ENV, "").strip().lower()
    return "replay" if raw == "replay" else "auto"


class MissObserver(Protocol):
    """Anything that wants the LLC-miss address stream (the ATMem runtime)."""

    def observe_misses(self, miss_addrs: np.ndarray) -> None: ...


class TraceExecutor:
    """Charges access traces against one simulated memory system.

    ``prefetch_coverage`` models the hardware stream prefetchers: misses of
    SEQUENTIAL phases are demand-covered by the prefetcher with this
    probability and then do not retire as PEBS LLC-miss load events, so the
    profiler never sees them.  This is why ATMem's sampling naturally
    prefers random-access data (vertex property arrays) over streaming data
    (adjacency scans) — exactly the data whose placement on the fast tier
    pays off, since streams are bandwidth-friendly on NVM while random
    gathers are not.  The execution *cost* of sequential misses is still
    charged in full (prefetching moves them off the critical path but not
    off the memory bus).  Neither prefetch mode affects pricing, which is
    why compiled profiles are prefetch-independent.
    """

    def __init__(
        self,
        system: HeterogeneousMemorySystem,
        *,
        count_tlb: bool = False,
        prefetch_coverage: float = 63 / 64,
        prefetch_mode: str = "hint",
        telemetry=None,
    ) -> None:
        if not 0.0 <= prefetch_coverage < 1.0:
            raise ValueError(
                f"prefetch_coverage must be in [0, 1), got {prefetch_coverage}"
            )
        if prefetch_mode not in ("hint", "model"):
            raise ValueError(
                f"prefetch_mode must be 'hint' or 'model', got {prefetch_mode!r}"
            )
        self.system = system
        self.count_tlb = count_tlb
        self.prefetch_coverage = prefetch_coverage
        #: "hint": phases flagged prefetchable are covered at the fixed
        #: ``prefetch_coverage`` rate.  "model": an explicit stream
        #: prefetcher detects covered misses from the addresses themselves
        #: (see :mod:`repro.mem.prefetcher`), ignoring the hints.
        self.prefetch_mode = prefetch_mode
        if prefetch_mode == "model":
            from repro.mem.prefetcher import StreamPrefetcher

            self._prefetcher = StreamPrefetcher()
        else:
            self._prefetcher = None
        #: Optional :class:`repro.mem.telemetry.TelemetryCollector` that
        #: accumulates per-tier traffic while runs are priced.
        self.telemetry = telemetry
        # Residual sampling of covered streams: deterministic stride.
        self._prefetch_stride = max(1, int(round(1.0 / (1.0 - prefetch_coverage))))

    def run(
        self,
        trace: AccessTrace,
        *,
        miss_observer: MissObserver | None = None,
        hits: np.ndarray | None = None,
        profile: TraceProfile | None = None,
    ) -> RunCost:
        """Simulate one application run described by ``trace``.

        ``hits`` optionally supplies a precomputed LLC hit mask for the
        trace (one bool per access, program order) — the mask is a pure
        function of the address stream and the LLC geometry, so callers
        that run the same trace repeatedly (see
        :mod:`repro.sim.tracecache`) can solve the working-set model once.

        ``profile`` optionally supplies the compiled miss profile of the
        same (trace, LLC) pair; eligible runs (static placement, no
        observer, no TLB counting) are then priced in O(pages) without
        touching the access stream.  Ineligible runs silently fall back
        to replay — the caller never has to know which path ran, because
        both produce the same :class:`RunCost`.
        """
        cost = RunCost()
        if not len(trace):
            return cost
        use_profile = (
            profile is not None
            and miss_observer is None
            and not self.count_tlb
            and pricing_mode() != "replay"
            and profile.matches(trace)
        )
        registry = process_metrics()
        started = time.perf_counter()
        with span(
            "executor.run",
            cat="executor",
            phases=len(trace.phases),
            pricing="profile" if use_profile else "replay",
        ) as live:
            if use_profile:
                cost = self._run_profiled(profile)
                if os.environ.get(VERIFY_PROFILE_ENV):
                    self._verify_parity(cost, trace, hits)
            else:
                cost = self._run_priced(trace, miss_observer, hits)
            live.set(
                sim_seconds=cost.seconds,
                misses=cost.n_misses,
                accesses=cost.n_accesses,
            )
        registry.observe("stage.pricing", time.perf_counter() - started)
        registry.inc(
            "pricing.profile_cells" if use_profile else "pricing.replay_cells"
        )
        registry.inc("executor.runs")
        registry.inc("executor.accesses", cost.n_accesses)
        registry.inc("executor.misses", cost.n_misses)
        registry.inc("executor.sim_seconds", cost.seconds)
        return cost

    def _run_priced(
        self,
        trace: AccessTrace,
        miss_observer: MissObserver | None,
        hits: np.ndarray | None,
    ) -> RunCost:
        """The replay pricing loop proper (see :meth:`run` for the contract)."""
        system = self.system
        cost = RunCost()
        if hits is None:
            hits = system.llc.hit_mask(trace.all_addresses())
        offset = 0
        for phase in trace:
            n = len(phase)
            miss_mask = ~hits[offset : offset + n]
            offset += n
            miss_addrs = phase.addrs[miss_mask]
            miss_tiers = system.address_space.tiers_of(miss_addrs)
            if miss_observer is not None:
                if self._prefetcher is not None:
                    # Measured mode: the streamer decides per miss.
                    miss_observer.observe_misses(
                        self._prefetcher.residual_misses(miss_addrs)
                    )
                elif phase.prefetchable:
                    # Hint mode: only the residual of flagged phases
                    # retires as a sampleable LLC-miss load event.
                    miss_observer.observe_misses(
                        miss_addrs[:: self._prefetch_stride]
                    )
                else:
                    miss_observer.observe_misses(miss_addrs)
            tlb_misses = 0
            if self.count_tlb:
                shifts = system.address_space.map_shifts_of(phase.addrs)
                tlb_misses = system.tlb.count_misses(phase.addrs, shifts)
                tlb_misses += int(system.tlb_background_miss_rate * n)
            phase_cost = system.cost_model.phase_cost(phase, miss_mask, miss_tiers)
            if self.telemetry is not None:
                self.telemetry.record_phase(phase, phase_cost.miss_by_tier)
            cost.add_phase(
                seconds=phase_cost.seconds,
                n_accesses=phase_cost.n_accesses,
                n_misses=phase_cost.n_misses,
                miss_by_tier=phase_cost.miss_by_tier,
                tlb_misses=tlb_misses,
                label=phase.label,
            )
        return cost

    def _run_profiled(self, profile: TraceProfile) -> RunCost:
        """Price a run from its compiled profile (no access-stream walk).

        The per-phase fold into :class:`RunCost` happens in phase order
        with the same scalar additions as the replay loop, so the
        accumulated totals are bit-identical, not merely close.
        """
        system = self.system
        page_tiers = system.address_space.tiers_of_pages(profile.pages)
        pricing = system.cost_model.price_profile(profile, page_tiers)
        cost = RunCost()
        phase_misses = profile.phase_misses
        miss_matrix = pricing.miss_matrix
        for p in range(profile.n_phases):
            row = miss_matrix[p]
            miss_by_tier = {
                int(t): int(row[t]) for t in np.flatnonzero(row)
            }
            if self.telemetry is not None:
                self.telemetry.record_counts(
                    is_write=bool(profile.phase_is_write[p]),
                    is_random=bool(profile.phase_is_random[p]),
                    miss_by_tier=miss_by_tier,
                )
            cost.add_phase(
                seconds=float(pricing.phase_seconds[p]),
                n_accesses=int(profile.phase_n[p]),
                n_misses=int(phase_misses[p]),
                miss_by_tier=miss_by_tier,
                tlb_misses=0,
                label=profile.labels[p],
            )
        return cost

    def _verify_parity(
        self, cost: RunCost, trace: AccessTrace, hits: np.ndarray | None
    ) -> None:
        """The parity oracle: replay must agree with profile pricing."""
        registry = process_metrics()
        registry.inc("pricing.parity_checks")
        telemetry, self.telemetry = self.telemetry, None
        try:
            replayed = self._run_priced(trace, None, hits)
        finally:
            self.telemetry = telemetry
        close = (
            abs(cost.seconds - replayed.seconds)
            <= PARITY_RTOL * max(abs(replayed.seconds), 1e-30)
            and cost.n_accesses == replayed.n_accesses
            and cost.n_misses == replayed.n_misses
            and cost.miss_by_tier == replayed.miss_by_tier
        )
        if not close:
            registry.inc("pricing.parity_failures")
            raise TraceError(
                "compiled-profile pricing diverged from replay: "
                f"profile {cost.seconds!r}s / {cost.n_misses} misses vs "
                f"replay {replayed.seconds!r}s / {replayed.n_misses} misses"
            )
