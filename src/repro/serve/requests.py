"""Request and outcome types for the placement service.

The serving layer (:mod:`repro.serve.service`) admits a *stream* of
tenant jobs rather than a batch scenario; these are the typed messages
that cross its boundary.  Everything here is JSON-friendly so jobs can
be journalled, replayed, and generated from arrival traces
(:mod:`repro.serve.arrivals`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError
from repro.sim.parallel import AppSpec

# -- operations ---------------------------------------------------------
#: Admit a new tenant: register, profile, optimize, measure.
OP_ADMIT = "admit"
#: Depart a tenant: free its pages, drop its objects.
OP_DEPART = "depart"
#: A tenant changed phase: re-profile and re-optimize in place.
OP_PHASE_CHANGE = "phase-change"
#: Measure a tenant on the current shared placement.
OP_MEASURE = "measure"

OPS = (OP_ADMIT, OP_DEPART, OP_PHASE_CHANGE, OP_MEASURE)

# -- job outcome statuses ----------------------------------------------
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"
STATUS_EXPIRED = "expired"
STATUS_FAILED = "failed"


class ServeError(ReproError):
    """Base class for serving-layer errors."""


class AdmissionRejected(ServeError):
    """The service refused a job instead of oversubscribing.

    ``reason`` is a stable machine-readable token:

    - ``queue-full`` — the bounded request queue is at its limit;
    - ``shed`` — overload shedding reached the reject tier;
    - ``reservation`` — the tenant's fast-tier reservation cannot be
      honoured with current capacity;
    - ``breaker-open`` — the tenant's circuit breaker is open after
      repeated failures;
    - ``duplicate`` — a tenant with this name is already resident;
    - ``unknown-tenant`` — the op targets a tenant that is not resident;
    - ``stopped`` — the service is not accepting work.
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        super().__init__(detail or reason)
        self.reason = reason


class DeadlineExceeded(ServeError):
    """A job's deadline expired before (or while) it was served."""


class ServiceStopped(ServeError):
    """The service was stopped while the job was still queued."""


@dataclass(frozen=True)
class QoS:
    """Per-job quality-of-service contract.

    ``reserve_fast_bytes`` is checked at admission: the service refuses
    to admit a tenant whose reservation cannot fit next to the existing
    reservations (typed :class:`AdmissionRejected` rather than a later
    :class:`~repro.errors.CapacityError` deep inside a migration pass).
    ``deadline_s`` is a relative budget from submission; ``None`` means
    no deadline.  ``allow_stale`` opts the job into the "serve stale
    placement" degradation tier under overload.  ``latency_slo_s`` is
    the *accounted* (not enforced) decision-latency target feeding the
    tenant's SLO error budget (:mod:`repro.obs.slo`); ``None`` falls
    back to ``deadline_s``, then to the engine default.
    """

    reserve_fast_bytes: int = 0
    deadline_s: float | None = None
    allow_stale: bool = True
    latency_slo_s: float | None = None

    def to_json(self) -> dict:
        return {
            "reserve_fast_bytes": self.reserve_fast_bytes,
            "deadline_s": self.deadline_s,
            "allow_stale": self.allow_stale,
            "latency_slo_s": self.latency_slo_s,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "QoS":
        return cls(
            reserve_fast_bytes=int(payload.get("reserve_fast_bytes", 0)),
            deadline_s=payload.get("deadline_s"),
            allow_stale=bool(payload.get("allow_stale", True)),
            latency_slo_s=payload.get("latency_slo_s"),
        )


@dataclass(frozen=True)
class TenantJob:
    """One unit of work for the resident service."""

    op: str
    tenant: str
    app: AppSpec | None = None
    qos: QoS = field(default_factory=QoS)

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ServeError(f"unknown op {self.op!r}; expected one of {OPS}")
        if self.op == OP_ADMIT and self.app is None:
            raise ServeError("admit requires an AppSpec")

    def to_json(self) -> dict:
        return {
            "op": self.op,
            "tenant": self.tenant,
            "app": self.app.to_json() if self.app is not None else None,
            "qos": self.qos.to_json(),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "TenantJob":
        app = payload.get("app")
        return cls(
            op=str(payload["op"]),
            tenant=str(payload["tenant"]),
            app=AppSpec.from_json(app) if app is not None else None,
            qos=QoS.from_json(payload.get("qos", {})),
        )


@dataclass
class JobOutcome:
    """What happened to one submitted job.

    ``degraded`` names the shedding tier applied (``""`` when served at
    full fidelity, ``"skip-optimize"`` / ``"stale"`` otherwise);
    ``latency_s`` is submit-to-settle decision latency; ``result`` is the
    op's payload (a result dict for measure/admit, ``None`` otherwise).
    """

    job: TenantJob
    status: str
    detail: str = ""
    degraded: str = ""
    latency_s: float = 0.0
    result: Any = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK
