"""Deterministic arrival traces and a synchronous serving driver.

:func:`generate_arrivals` produces a seeded stream of tenant jobs —
admits, departs, phase changes, measures — that maintains a coherent
live-tenant set (it never departs a tenant it has not admitted), so the
same seed always yields the same trace.  :func:`serve_trace` drives such
a trace through a :class:`~repro.serve.service.PlacementService` inside
``asyncio.run`` and reports sustained placements/sec plus the decision-
latency quantiles the benchmark (``benchmarks/bench_serve.py``) records.
"""

from __future__ import annotations

import asyncio
import json
import random
import time

from repro.serve.requests import (
    OP_ADMIT,
    OP_DEPART,
    OP_MEASURE,
    OP_PHASE_CHANGE,
    STATUS_REJECTED,
    AdmissionRejected,
    JobOutcome,
    QoS,
    TenantJob,
)
from repro.serve.service import PlacementService, ServiceConfig
from repro.sim.parallel import AppSpec

#: Keep arrival-trace tenants tiny: the point is churn, not graph size.
ARRIVAL_SCALE = 1 << 20

#: The app/dataset recipes arrivals draw from.
DEFAULT_ROSTER = (
    ("PR", "twitter"),
    ("BFS", "rmat24"),
    ("CC", "pokec"),
)


def default_roster(scale: int = ARRIVAL_SCALE) -> tuple[AppSpec, ...]:
    """The stock tenant recipes at the given scale."""
    return tuple(
        AppSpec.make(app, dataset, scale=scale)
        for app, dataset in DEFAULT_ROSTER
    )


def generate_arrivals(
    n_events: int,
    *,
    seed: int = 17,
    roster: tuple[AppSpec, ...] | None = None,
    max_live: int = 3,
    deadline_s: float | None = None,
    reserve_fast_bytes: int = 0,
    latency_slo_s: float | None = None,
) -> list[TenantJob]:
    """A seeded, self-consistent stream of tenant jobs.

    The stream admits fresh tenants (monotonic names, so a replay after
    departures never collides), measures and phase-changes live ones,
    and departs them — weighted so a few tenants are always resident.
    Identical arguments produce an identical trace, which is what lets
    the chaos kill-and-recover case compare two runs of the same trace.
    """
    rng = random.Random(seed)
    roster = roster or default_roster()
    qos = QoS(
        deadline_s=deadline_s,
        reserve_fast_bytes=reserve_fast_bytes,
        latency_slo_s=latency_slo_s,
    )
    live: list[str] = []
    next_id = 0
    jobs: list[TenantJob] = []
    for _ in range(n_events):
        roll = rng.random()
        if not live or (roll < 0.35 and len(live) < max_live):
            name = f"t{next_id:02d}"
            next_id += 1
            app = roster[rng.randrange(len(roster))]
            jobs.append(TenantJob(OP_ADMIT, name, app=app, qos=qos))
            live.append(name)
        elif roll < 0.55:
            tenant = live[rng.randrange(len(live))]
            jobs.append(TenantJob(OP_MEASURE, tenant, qos=qos))
        elif roll < 0.75:
            tenant = live[rng.randrange(len(live))]
            jobs.append(TenantJob(OP_PHASE_CHANGE, tenant, qos=qos))
        else:
            tenant = live.pop(rng.randrange(len(live)))
            jobs.append(TenantJob(OP_DEPART, tenant, qos=qos))
    return jobs


def serve_trace(
    jobs: list[TenantJob],
    config: ServiceConfig,
    *,
    kill_after: int | None = None,
    clock=None,
    trace_cache=None,
) -> dict:
    """Drive a job stream through a resident service, synchronously.

    Jobs are submitted one at a time (settled before the next arrives),
    so the queue never sheds — this measures the *sustained* serving
    rate.  ``kill_after=k`` crashes the service (no drain, no final
    checkpoint) after ``k`` jobs settle, simulating a SIGKILL mid-trace;
    the report then reflects the partial run, and a follow-up
    :func:`serve_trace` against the same journal root recovers it.
    """

    async def _drive() -> dict:
        kwargs = {"trace_cache": trace_cache}
        if clock is not None:
            kwargs["clock"] = clock
        service = PlacementService(config, **kwargs)
        await service.start()
        outcomes: list[JobOutcome] = []
        killed = False
        start = time.perf_counter()
        for i, job in enumerate(jobs):
            if kill_after is not None and i >= kill_after:
                service.kill()
                killed = True
                break
            try:
                outcomes.append(await service.submit(job))
            except AdmissionRejected as exc:
                outcomes.append(
                    JobOutcome(
                        job=job, status=STATUS_REJECTED, detail=exc.reason
                    )
                )
        wall = time.perf_counter() - start
        tenant_table = service.tenant_table()
        exposition = None
        if service.exposition_port is not None and not killed:
            # Scrape the *live* endpoint (async — a blocking HTTP client
            # here would deadlock the loop the server runs on) so the
            # report's SLO/burn figures provably came over the wire.
            exposition = await _scrape_exposition(
                config.expose_host, service.exposition_port
            )
        health = await service.stop() if not killed else service.health()
        placements = sum(
            1
            for o in outcomes
            if o.ok and o.job.op in (OP_ADMIT, OP_PHASE_CHANGE)
        )
        return {
            "jobs": len(outcomes),
            "killed": killed,
            "wall_seconds": wall,
            "placements": placements,
            "placements_per_s": placements / wall if wall > 0 else 0.0,
            "statuses": _status_counts(outcomes),
            "outcomes": outcomes,
            "tenant_table": tenant_table,
            "health": health,
            "exposition": exposition,
        }

    return asyncio.run(_drive())


async def _scrape_exposition(host: str, port: int) -> dict:
    """Pull ``/metrics`` and ``/slo`` off a running exposition server."""
    from repro.obs.exposition import fetch, parse_prometheus

    metrics_text = await fetch(host, port, "/metrics")
    slo = json.loads(await fetch(host, port, "/slo"))
    return {
        "port": port,
        "metrics": parse_prometheus(metrics_text),
        "slo": slo,
    }


def _status_counts(outcomes: list[JobOutcome]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for outcome in outcomes:
        counts[outcome.status] = counts.get(outcome.status, 0) + 1
    return dict(sorted(counts.items()))
