"""The resident placement service: admission, deadlines, shedding, recovery.

:class:`PlacementService` turns the batch :class:`~repro.sim.multitenant.
MultiTenantHost` into a long-lived asyncio service that admits a *stream*
of tenant jobs against one warm memory system.  Robustness is layered
end to end:

1. **Admission control** — the request queue is bounded, per-tenant
   fast-tier reservations are checked before any allocation happens, and
   refusals are typed :class:`~repro.serve.requests.AdmissionRejected`
   with a stable reason token rather than a deep ``CapacityError``.
2. **Deadlines and cancellation** — every job carries a relative
   deadline.  Expiry before dispatch settles the job untouched; expiry
   *mid-admit* rolls the half-admitted tenant back out (pages freed,
   objects dropped) and the post-op :meth:`check_consistency` audit
   stays green, because migration passes themselves are transactional
   (:class:`~repro.core.migration.MultiStageMigrator`) and the service
   only checks deadlines on stage boundaries.
3. **Graceful degradation** — overload sheds load in declared tiers
   keyed to queue depth at submit time: first re-optimization is skipped
   (placements go stale but service continues), then measure requests
   are served from the last committed result (``allow_stale`` QoS opt-
   in), and only past the final threshold are jobs rejected.  Departs
   are never shed — they free capacity.
4. **Circuit breaker + warm-state recovery** — repeated failures for a
   tenant open a per-tenant breaker with deterministic jittered backoff;
   every committed mutation is journalled with CRC sidecars
   (:mod:`repro.serve.journal`), so a killed service restarts, replays,
   and resumes with a bit-identical tenant table and canonical
   placements.

The event vocabulary (``serve.*`` on the process bus) and the
:meth:`PlacementService.health` endpoint — ``PoolHealth``-style counters
plus p50/p99 decision latency — make every one of those paths observable
and chaos-testable (:mod:`repro.faults.chaos`).
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.config import PlatformConfig
from repro.core.runtime import AtMemRuntime, RuntimeConfig
from repro.errors import ConsistencyError, ReproError
from repro.mem.address_space import PAGE_SIZE
from repro.obs.bus import emit
from repro.obs.context import SpanContext, root_context
from repro.obs.exposition import ExpositionServer, render_prometheus
from repro.obs.metrics import LatencyTracker, process_metrics
from repro.obs.slo import SLOEngine
from repro.obs.tracer import process_tracer, span
from repro.serve.journal import ServiceJournal
from repro.serve.requests import (
    OP_ADMIT,
    OP_DEPART,
    OP_MEASURE,
    OP_PHASE_CHANGE,
    STATUS_EXPIRED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_REJECTED,
    AdmissionRejected,
    DeadlineExceeded,
    JobOutcome,
    QoS,
    ServiceStopped,
    TenantJob,
)
from repro.sim.multitenant import MultiTenantHost
from repro.sim.parallel import AppSpec


@dataclass(frozen=True)
class ShedPolicy:
    """Overload tiers as fractions of the bounded queue's depth.

    With the defaults, a queue at half capacity stops re-optimizing
    (``skip-optimize``), at three quarters serves stale results to jobs
    that allow it (``stale``), and at ``reject_at`` refuses new work
    outright; the queue bound itself is the final backstop.

    ``budget_aware`` adds an SLO-driven tier: once *any* shedding is
    active (level >= 1), jobs from tenants whose error-budget burn rate
    (:mod:`repro.obs.slo`) is at or above ``burn_threshold`` are
    rejected first — the tenants consuming their budget fastest are the
    ones overload hurts least by refusing, since their objective is
    already lost for the window.  Departs are never shed.
    """

    queue_limit: int = 64
    skip_optimize_at: float = 0.5
    stale_at: float = 0.75
    reject_at: float = 1.0
    budget_aware: bool = False
    burn_threshold: float = 1.0


@dataclass(frozen=True)
class BreakerPolicy:
    """Per-tenant circuit breaker: trip threshold and jittered backoff."""

    failure_threshold: int = 3
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    jitter: float = 0.25


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a resident service needs to start."""

    platform: PlatformConfig
    runtime_config: RuntimeConfig | None = None
    journal_root: Path | None = None
    shed: ShedPolicy = field(default_factory=ShedPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    #: Seeds the deterministic breaker jitter.
    seed: int = 0
    #: Run a full consistency audit after every mutating op.
    audit: bool = True
    #: ``None`` — no exposition endpoint; ``0`` — bind an ephemeral
    #: loopback port (read it back from ``exposition_port``); ``>0`` —
    #: bind that port.
    expose_port: int | None = None
    expose_host: str = "127.0.0.1"


@dataclass
class _Breaker:
    """Failure accounting for one tenant."""

    failures: int = 0
    trips: int = 0
    open_until: float = 0.0


@dataclass
class _Entry:
    """One queued job plus its admission-time bookkeeping."""

    job: TenantJob
    future: asyncio.Future
    submitted: float
    deadline_at: float | None
    shed_level: int
    #: The job's submission span context (``None`` when tracing is off).
    ctx: SpanContext | None = None


_STOP = object()


class PlacementService:
    """Asyncio resident service for streaming tenant placement jobs."""

    def __init__(
        self,
        config: ServiceConfig,
        *,
        clock: Callable[[], float] = time.monotonic,
        trace_cache=None,
    ) -> None:
        self.config = config
        self.clock = clock
        self._trace_cache = trace_cache
        self.host: MultiTenantHost | None = None
        self.journal: ServiceJournal | None = None
        self._queue: asyncio.Queue | None = None
        self._dispatcher: asyncio.Task | None = None
        self._stopped = True
        self._killed = False
        self._breakers: dict[str, _Breaker] = {}
        self._reservations: dict[str, int] = {}
        self._qos: dict[str, QoS] = {}
        self._tenant_apps: dict[str, AppSpec] = {}
        self._plans: dict[str, tuple] = {}
        self._baselines: dict[str, object] = {}
        self._stale_results: dict[str, dict] = {}
        self._fast_capacity = 0
        self.counters: dict[str, int] = {}
        self.latency = LatencyTracker()
        self.recovered_tenants = 0
        #: Per-tenant SLO error budgets, fed by every settled outcome
        #: and submit-time rejection; shares the service clock so burn
        #: rates are step-clock testable.
        self.slo = SLOEngine(clock=clock)
        self.exposition: ExpositionServer | None = None
        #: The bound ``/metrics`` port once :meth:`start` has run with
        #: ``config.expose_port`` set.
        self.exposition_port: int | None = None
        self._trace_root: SpanContext | None = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Build the warm system, recover journalled state, start serving."""
        self.host = MultiTenantHost(
            self.config.platform,
            runtime_config=self.config.runtime_config or RuntimeConfig(),
            trace_cache=self._trace_cache,
        )
        alloc = self.host.system.allocators[self.host.system.fast_tier]
        self._fast_capacity = alloc.free_bytes + alloc.used_bytes
        if self.config.journal_root is not None:
            self.journal = ServiceJournal(Path(self.config.journal_root))
            self._recover()
        self._queue = asyncio.Queue(maxsize=self.config.shed.queue_limit)
        self._stopped = False
        # The dispatcher task is *stored* (and awaited by stop()): a
        # fire-and-forget create_task would be GC-bait that swallows
        # exceptions — exactly what tools/astlint.py now rejects.
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )
        if process_tracer().enabled:
            # Seed-derived root: a killed-and-recovered service re-joins
            # the same trace, so one causal tree spans the restart.
            self._trace_root = root_context("serve", self.config.seed)
        if self.config.expose_port is not None:
            self.exposition = ExpositionServer(
                metrics=self._metrics_text,
                health=self.health,
                slo=self.slo.snapshot,
                host=self.config.expose_host,
                port=self.config.expose_port,
            )
            self.exposition_port = await self.exposition.start()

    async def stop(self) -> dict:
        """Drain the queue, settle every job, checkpoint, and stop."""
        if self._queue is not None and self._dispatcher is not None:
            self._stopped = True
            await self._queue.put(_STOP)
            await self._dispatcher
            self._dispatcher = None
        if self.exposition is not None:
            await self.exposition.stop()
            self.exposition = None
        if self.journal is not None and not self._killed:
            self.journal.checkpoint(self._snapshot_state())
        return self.health()

    def kill(self) -> None:
        """Simulate a crash: stop serving *without* drain or checkpoint.

        Queued jobs settle as :class:`ServiceStopped`; the journal is
        left exactly as the last committed op wrote it, which is what a
        real SIGKILL leaves behind.  A fresh service pointed at the same
        journal root recovers from it.
        """
        self._stopped = True
        self._killed = True
        if self.exposition is not None:
            self.exposition.close_nowait()
            self.exposition = None
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            self._dispatcher = None
        if self._queue is not None:
            while not self._queue.empty():
                entry = self._queue.get_nowait()
                if entry is not _STOP and not entry.future.done():
                    entry.future.set_exception(
                        ServiceStopped("service killed with job queued")
                    )
        emit("serve.kill", source="serve")

    # -- submission (admission control happens here) --------------------
    async def submit(self, job: TenantJob) -> JobOutcome:
        """Submit one job; returns its outcome or raises on refusal.

        Submit-time refusals (queue full, shed tier, open breaker,
        duplicate admit, missing reservation capacity) raise a typed
        :class:`AdmissionRejected` *before* the job consumes any queue
        slot or allocator byte.  Everything accepted settles through the
        returned :class:`JobOutcome`, including expiry and failures.
        """
        if self._stopped or self._queue is None:
            raise AdmissionRejected("stopped", "service is not accepting work")
        now = self.clock()
        try:
            self._check_breaker(job, now)
            depth = self._queue.qsize()
            shed_level = self._shed_level(depth)
            if job.op != OP_DEPART and shed_level >= 3:
                self._count("rejected.shed")
                emit("serve.shed", detail=f"reject {job.tenant}",
                     source="serve", level=3)
                raise AdmissionRejected(
                    "shed", f"queue depth {depth} reached the reject tier"
                )
            self._check_burn_shed(job, shed_level)
            self._check_op(job)
        except AdmissionRejected:
            # Submit-time refusals spend the tenant's admission budget —
            # the service broke (or declined) its promise either way.
            self.slo.record_rejection(job.tenant, job.qos)
            raise
        entry = _Entry(
            job=job,
            future=asyncio.get_running_loop().create_future(),
            submitted=now,
            deadline_at=(
                now + job.qos.deadline_s
                if job.qos.deadline_s is not None
                else None
            ),
            shed_level=shed_level,
            ctx=self._submission_ctx(job),
        )
        if shed_level > 0 and job.op != OP_DEPART:
            self._count(f"shed.level{shed_level}")
            emit("serve.shed", detail=job.tenant, source="serve",
                 level=shed_level)
        try:
            self._queue.put_nowait(entry)
        except asyncio.QueueFull:
            self._count("rejected.queue-full")
            self.slo.record_rejection(job.tenant, job.qos)
            raise AdmissionRejected(
                "queue-full",
                f"request queue at its {self.config.shed.queue_limit} limit",
            ) from None
        return await entry.future

    def _submission_ctx(self, job: TenantJob) -> SpanContext | None:
        """Record this job's submission instant under the service root.

        The returned context rides on the queue entry; ``_serve``
        attaches it so every span the job opens — phase transitions,
        migrations, store loads — chains up to this instant, and the
        merged export shows one causal tree per ``TenantJob``.
        """
        tracer = process_tracer()
        if not tracer.enabled or self._trace_root is None:
            return None
        with tracer.attach(self._trace_root):
            return tracer.submission(
                "serve.submit", cat="serve", tenant=job.tenant, op=job.op
            )

    def _check_burn_shed(self, job: TenantJob, shed_level: int) -> None:
        """The budget-aware shed tier (opt-in via ``ShedPolicy``)."""
        shed = self.config.shed
        if (
            not shed.budget_aware
            or job.op == OP_DEPART
            or shed_level < 1
        ):
            return
        burn = self.slo.burn_of(job.tenant)
        if burn >= shed.burn_threshold:
            self._count("rejected.shed-burn")
            emit(
                "serve.shed", detail=f"burn {job.tenant}", source="serve",
                level=shed_level, burn=round(burn, 4),
            )
            raise AdmissionRejected(
                "shed-burn",
                f"tenant {job.tenant!r} burning at {burn:.2f}x its error "
                f"budget under overload (threshold {shed.burn_threshold})",
            )

    def _check_breaker(self, job: TenantJob, now: float) -> None:
        breaker = self._breakers.get(job.tenant)
        if breaker is not None and now < breaker.open_until:
            self._count("rejected.breaker-open")
            raise AdmissionRejected(
                "breaker-open",
                f"tenant {job.tenant!r} breaker open for "
                f"{breaker.open_until - now:.3f}s more",
            )

    def _check_op(self, job: TenantJob) -> None:
        assert self.host is not None
        resident = {name for name, _, _, _ in self.host.tenants}
        if job.op == OP_ADMIT:
            if job.tenant in resident:
                self._count("rejected.duplicate")
                raise AdmissionRejected(
                    "duplicate", f"tenant {job.tenant!r} already resident"
                )
            reserve = job.qos.reserve_fast_bytes
            committed = sum(self._reservations.values())
            if reserve and committed + reserve > self._fast_capacity:
                self._count("rejected.reservation")
                raise AdmissionRejected(
                    "reservation",
                    f"{reserve} B reservation does not fit next to "
                    f"{committed} B already reserved of "
                    f"{self._fast_capacity} B fast capacity",
                )
        elif job.tenant not in resident:
            self._count("rejected.unknown-tenant")
            raise AdmissionRejected(
                "unknown-tenant", f"tenant {job.tenant!r} is not resident"
            )

    def _shed_level(self, depth: int) -> int:
        shed = self.config.shed
        limit = max(1, shed.queue_limit)
        fraction = depth / limit
        if fraction >= shed.reject_at:
            return 3
        if fraction >= shed.stale_at:
            return 2
        if fraction >= shed.skip_optimize_at:
            return 1
        return 0

    # -- the dispatcher -------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        while True:
            entry = await self._queue.get()
            if entry is _STOP:
                break
            outcome = self._serve(entry)
            if not entry.future.done():
                entry.future.set_result(outcome)
            await asyncio.sleep(0)  # let submitters observe settlement

    def _serve(self, entry: _Entry) -> JobOutcome:
        """Serve one entry inside its submission's causal context."""
        with process_tracer().attach(entry.ctx):
            with span(
                "serve.job", cat="serve",
                tenant=entry.job.tenant, op=entry.job.op,
            ):
                return self._serve_in_context(entry)

    def _serve_in_context(self, entry: _Entry) -> JobOutcome:
        job = entry.job
        try:
            self._require_deadline(entry)
            if job.op == OP_ADMIT:
                outcome = self._serve_admit(entry)
            elif job.op == OP_DEPART:
                outcome = self._serve_depart(entry)
            elif job.op == OP_PHASE_CHANGE:
                outcome = self._serve_phase_change(entry)
            elif job.op == OP_MEASURE:
                outcome = self._serve_measure(entry)
            else:  # unreachable: TenantJob validates op
                raise AdmissionRejected("unknown-op", job.op)
            self._breaker_success(job.tenant)
        except DeadlineExceeded as exc:
            self._count("expired")
            emit("serve.expire", detail=job.tenant, source="serve", op=job.op)
            outcome = self._outcome(entry, STATUS_EXPIRED, detail=str(exc))
        except ReproError as exc:
            self._count("failed")
            emit("serve.fail", detail=f"{job.tenant}: {exc}", source="serve",
                 op=job.op)
            self._breaker_failure(job.tenant)
            outcome = self._outcome(entry, STATUS_FAILED, detail=str(exc))
        self.latency.observe(outcome.latency_s)
        self.slo.record_outcome(
            job.tenant, outcome.status, outcome.latency_s, qos=job.qos
        )
        return outcome

    def _require_deadline(self, entry: _Entry) -> None:
        if entry.deadline_at is not None and self.clock() >= entry.deadline_at:
            raise DeadlineExceeded(
                f"{entry.job.op} {entry.job.tenant!r} missed its "
                f"{entry.job.qos.deadline_s}s deadline"
            )

    # -- op handlers ----------------------------------------------------
    def _serve_admit(self, entry: _Entry) -> JobOutcome:
        assert self.host is not None
        job = entry.job
        name = job.tenant
        self.host.admit(name, job.app)
        try:
            self._require_deadline(entry)
            plan, baseline = self.host.profile_tenant(name)
            self._require_deadline(entry)
            degraded = ""
            if entry.shed_level >= 1:
                degraded = "skip-optimize"
            else:
                self.host.optimize_tenant(name)
            self._require_deadline(entry)
            result = self.host.measure_tenant(name, plan, baseline)
        except Exception:
            # Roll the half-admitted tenant back out: pages freed,
            # objects dropped, audit green — allocator and page-table
            # state return to the pre-admit snapshot.
            self.host.depart(name)
            emit("serve.rollback", detail=name, source="serve", op=job.op)
            raise
        self._plans[name] = plan
        self._baselines[name] = baseline
        self._reservations[name] = job.qos.reserve_fast_bytes
        self._qos[name] = job.qos
        self._tenant_apps[name] = job.app
        self._stale_results[name] = self._result_payload(result)
        self._commit(job)
        self._count("admitted")
        emit("serve.admit", detail=name, source="serve", degraded=degraded)
        return self._outcome(
            entry, STATUS_OK, degraded=degraded,
            result=self._stale_results[name],
        )

    def _serve_depart(self, entry: _Entry) -> JobOutcome:
        assert self.host is not None
        name = entry.job.tenant
        self.host.depart(name)
        for table in (
            self._plans, self._baselines, self._reservations, self._qos,
            self._stale_results, self._breakers, self._tenant_apps,
        ):
            table.pop(name, None)
        self._commit(entry.job)
        self._count("departed")
        emit("serve.depart", detail=name, source="serve")
        return self._outcome(entry, STATUS_OK)

    def _serve_phase_change(self, entry: _Entry) -> JobOutcome:
        assert self.host is not None
        job = entry.job
        name = job.tenant
        _, _, runtime, _ = self.host.tenant(name)
        runtime.reset_profiling()
        # Advance the tenant's phase: the re-profile below runs over the
        # phase's cumulative stream, and (when the LLC is reuse-derivable)
        # folds only the delta past the previous phase's profile.
        self.host.phase_change(name)
        plan, baseline = self.host.profile_tenant(name)
        self._require_deadline(entry)
        degraded = ""
        if entry.shed_level >= 1:
            degraded = "skip-optimize"
        else:
            self.host.optimize_tenant(name)
        self._plans[name] = plan
        self._baselines[name] = baseline
        self._commit(job)
        self._count("phase_changes")
        emit("serve.phase", detail=name, source="serve", degraded=degraded)
        return self._outcome(entry, STATUS_OK, degraded=degraded)

    def _serve_measure(self, entry: _Entry) -> JobOutcome:
        assert self.host is not None
        job = entry.job
        name = job.tenant
        if (
            entry.shed_level >= 2
            and job.qos.allow_stale
            and name in self._stale_results
        ):
            self._count("measured.stale")
            emit("serve.measure", detail=name, source="serve", stale=1)
            return self._outcome(
                entry, STATUS_OK, degraded="stale",
                result=self._stale_results[name],
            )
        if name not in self._plans:
            # Recovered (or never-profiled) tenant: profile on the
            # current placement first.
            plan, baseline = self.host.profile_tenant(name)
            self._plans[name] = plan
            self._baselines[name] = baseline
        self._require_deadline(entry)
        result = self.host.measure_tenant(
            name, self._plans[name], self._baselines[name]
        )
        payload = self._result_payload(result)
        self._stale_results[name] = payload
        self._count("measured")
        emit("serve.measure", detail=name, source="serve", stale=0)
        return self._outcome(entry, STATUS_OK, result=payload)

    # -- commit / audit -------------------------------------------------
    def _commit(self, job: TenantJob) -> None:
        """Journal a committed mutation and audit shared-system state."""
        if self.journal is not None:
            record = job.to_json()
            record["placements"] = self._placements_of(job.tenant)
            try:
                record["phase"] = self.host.phase_of(job.tenant)
            except ReproError:
                record["phase"] = 0  # departed
            self.journal.append(record)
            self.journal.checkpoint(self._snapshot_state())
        if self.config.audit:
            assert self.host is not None
            violations = self.host.system.check_consistency()
            if violations:
                raise ConsistencyError(
                    f"post-{job.op} audit failed: " + "; ".join(violations[:3])
                )

    def _placements_of(self, tenant: str) -> dict[str, list[list[int]]] | None:
        assert self.host is not None
        try:
            _, _, runtime, _ = self.host.tenant(tenant)
        except ReproError:
            return None  # departed
        return canonical_placements(
            runtime, self.host.system, prefix=f"{tenant}/"
        )

    def _snapshot_state(self) -> dict:
        assert self.host is not None
        tenants = []
        for name, _, runtime, key in self.host.tenants:
            tenants.append(
                {
                    "name": name,
                    "app": self._app_of(name),
                    "qos": self._qos.get(name, QoS()).to_json(),
                    "key_repr": repr(key),
                    "phase": self.host.phase_of(name),
                    "placements": canonical_placements(
                        runtime, self.host.system, prefix=f"{name}/"
                    ),
                }
            )
        return {"tenants": tenants, "slo": self.slo.to_json()}

    def _app_of(self, tenant: str) -> dict | None:
        app_spec = self._tenant_apps.get(tenant)
        return app_spec.to_json() if app_spec is not None else None

    # -- recovery -------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild the tenant table and placements from the journal."""
        assert self.journal is not None and self.host is not None
        state, records = self.journal.load()
        tenants: list[dict] = list(state.get("tenants", [])) if state else []
        if state and state.get("slo"):
            # Lifetime SLO totals continue across the restart; rolling
            # windows restart empty by design (see repro.obs.slo).
            self.slo.restore(state["slo"])
        for record in records:
            op = record.get("op")
            name = record.get("tenant")
            if op == OP_ADMIT:
                tenants.append(
                    {
                        "name": name,
                        "app": record.get("app"),
                        "qos": record.get("qos", {}),
                        "phase": int(record.get("phase", 0)),
                        "placements": record.get("placements") or {},
                    }
                )
            elif op == OP_DEPART:
                tenants = [t for t in tenants if t.get("name") != name]
            elif op == OP_PHASE_CHANGE:
                for t in tenants:
                    if t.get("name") == name:
                        t["placements"] = record.get("placements") or {}
                        t["phase"] = int(
                            record.get("phase", t.get("phase", 0) + 1)
                        )
        for t in tenants:
            name = t["name"]
            app_payload = t.get("app")
            if app_payload is None:
                continue
            app_spec = AppSpec.from_json(app_payload)
            self.host.admit(name, app_spec)
            self.host.set_phase(name, int(t.get("phase", 0)))
            _, _, runtime, _ = self.host.tenant(name)
            placements = t.get("placements") or {}
            runtime.apply_placement(
                {
                    f"{name}/{short}": [tuple(r) for r in regions]
                    for short, regions in placements.items()
                }
            )
            qos = QoS.from_json(t.get("qos", {}))
            self._reservations[name] = qos.reserve_fast_bytes
            self._qos[name] = qos
            self._tenant_apps[name] = app_spec
            self.recovered_tenants += 1
        if self.recovered_tenants:
            self._count("recoveries")
            emit(
                "serve.recover",
                detail=f"{self.recovered_tenants} tenant(s)",
                source="serve",
                amount=self.recovered_tenants,
            )
            if self.config.audit:
                violations = self.host.system.check_consistency()
                if violations:
                    raise ConsistencyError(
                        "post-recovery audit failed: "
                        + "; ".join(violations[:3])
                    )

    # -- breaker --------------------------------------------------------
    def _breaker_failure(self, tenant: str) -> None:
        policy = self.config.breaker
        breaker = self._breakers.setdefault(tenant, _Breaker())
        breaker.failures += 1
        if breaker.failures < policy.failure_threshold:
            return
        breaker.failures = 0
        breaker.trips += 1
        backoff = min(
            policy.backoff_max_s,
            policy.backoff_base_s * (2 ** (breaker.trips - 1)),
        )
        # Deterministic jitter: seeded by (service seed, tenant, trip
        # count) so chaos runs replay bit-identically.
        rng = random.Random(f"{self.config.seed}:{tenant}:{breaker.trips}")
        backoff *= 1.0 + policy.jitter * rng.random()
        breaker.open_until = self.clock() + backoff
        self._count("breaker_trips")
        emit(
            "serve.breaker_open", detail=tenant, source="serve",
            amount=backoff, trips=breaker.trips,
        )

    def _breaker_success(self, tenant: str) -> None:
        breaker = self._breakers.get(tenant)
        if breaker is not None and (breaker.failures or breaker.open_until):
            breaker.failures = 0
            breaker.open_until = 0.0
            emit("serve.breaker_close", detail=tenant, source="serve")

    # -- plumbing -------------------------------------------------------
    def _outcome(
        self,
        entry: _Entry,
        status: str,
        *,
        detail: str = "",
        degraded: str = "",
        result=None,
    ) -> JobOutcome:
        return JobOutcome(
            job=entry.job,
            status=status,
            detail=detail,
            degraded=degraded,
            latency_s=max(0.0, self.clock() - entry.submitted),
            result=result,
        )

    def _result_payload(self, result) -> dict:
        return {
            "tenant": result.name,
            "baseline_seconds": result.baseline.seconds,
            "optimized_seconds": result.optimized.seconds,
            "speedup": result.speedup,
            "fast_bytes": result.fast_bytes,
            "data_ratio": result.data_ratio,
        }

    def _count(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    # -- introspection --------------------------------------------------
    def tenant_table(self) -> list[dict]:
        """The canonical (VA-independent) resident-tenant table."""
        state = self._snapshot_state()
        return state["tenants"]

    def health(self) -> dict:
        """``PoolHealth``-style counters plus decision-latency quantiles."""
        return {
            "resident_tenants": len(self.host.tenants) if self.host else 0,
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "stopped": self._stopped,
            "counters": dict(sorted(self.counters.items())),
            "decision_latency": self.latency.summary(),
            "journal_corruptions": (
                list(self.journal.corruptions) if self.journal else []
            ),
            "slo": self.slo.snapshot(),
        }

    def _metrics_text(self) -> str:
        """The ``/metrics`` body: process registry + service series."""
        latency = self.latency.summary()
        samples: list[tuple[str, dict, float]] = [
            ("serve.queue_depth", {}, float(
                self._queue.qsize() if self._queue else 0
            )),
            ("serve.resident_tenants", {}, float(
                len(self.host.tenants) if self.host else 0
            )),
            ("serve.decision_latency_p50_seconds", {}, latency["p50"]),
            ("serve.decision_latency_p99_seconds", {}, latency["p99"]),
            ("serve.decisions", {}, float(latency["count"])),
        ]
        for key, value in sorted(self.counters.items()):
            samples.append(("serve.jobs", {"outcome": key}, float(value)))
        for tenant, entry in self.slo.snapshot().items():
            for kind in ("latency", "admission"):
                labels = {"tenant": tenant, "slo": kind}
                samples.append(
                    ("slo.burn_rate", labels, entry[kind]["burn_long"])
                )
                samples.append(
                    ("slo.attainment", labels, entry[kind]["attainment"])
                )
                samples.append(
                    (
                        "slo.budget_remaining",
                        labels,
                        entry[kind]["budget_remaining"],
                    )
                )
        return render_prometheus(process_metrics().snapshot(), samples)


def canonical_placements(
    runtime: AtMemRuntime, system, *, prefix: str = ""
) -> dict[str, list[list[int]]]:
    """VA-independent placement: fast-tier byte runs per object.

    Virtual addresses depend on allocation history (a rolled-back admit
    still consumed address space), so recovery equality is defined over
    *object-relative* ranges: for each object, the byte spans currently
    resident in the fast tier.  Two services whose tables compare equal
    here place every byte identically regardless of where the bump
    allocator happened to put the objects.
    """
    space = system.address_space
    fast = system.fast_tier
    out: dict[str, list[list[int]]] = {}
    for name, obj in runtime.objects.items():
        short = name[len(prefix):] if prefix and name.startswith(prefix) else name
        n_pages = -(-obj.nbytes // PAGE_SIZE)
        tiers = space.range_tiers(obj.base_va, n_pages * PAGE_SIZE)
        runs: list[list[int]] = []
        start: int | None = None
        for i in range(n_pages):
            on_fast = int(tiers[i]) == fast
            if on_fast and start is None:
                start = i
            elif not on_fast and start is not None:
                runs.append([start * PAGE_SIZE, min(i * PAGE_SIZE, obj.nbytes)])
                start = None
        if start is not None:
            runs.append(
                [start * PAGE_SIZE, min(n_pages * PAGE_SIZE, obj.nbytes)]
            )
        out[short] = runs
    return out
