"""Placement-as-a-service: the crash-tolerant resident serving layer.

Where :func:`repro.sim.multitenant.run_scenarios` runs *batch* shared-
host scenarios and dies with the process, this package keeps one warm
:class:`~repro.mem.system.HeterogeneousMemorySystem` resident and admits
a **stream** of tenant jobs against it:

- :mod:`repro.serve.requests` — typed jobs, QoS contracts, and outcomes;
- :mod:`repro.serve.service`  — the asyncio service: bounded admission,
  deadlines with transactional rollback, tiered load shedding, per-
  tenant circuit breakers;
- :mod:`repro.serve.journal`  — CRC-journalled warm state so a killed
  service recovers bit-identically;
- :mod:`repro.serve.arrivals` — seeded arrival traces and the
  synchronous driver the benchmark and chaos matrix share.

The service also feeds the telemetry stack in :mod:`repro.obs`: every
outcome lands in per-tenant SLO error budgets (:mod:`repro.obs.slo`,
journalled for warm restarts), jobs carry causal span contexts across
the submit boundary (:mod:`repro.obs.context`), and ``expose_port``
turns on the live ``/metrics`` + ``/health`` + ``/slo`` endpoint
(:mod:`repro.obs.exposition`) that ``repro top`` and the serve
benchmark scrape.
"""

from repro.serve.arrivals import default_roster, generate_arrivals, serve_trace
from repro.serve.journal import ServiceJournal
from repro.serve.requests import (
    OP_ADMIT,
    OP_DEPART,
    OP_MEASURE,
    OP_PHASE_CHANGE,
    AdmissionRejected,
    DeadlineExceeded,
    JobOutcome,
    QoS,
    ServeError,
    ServiceStopped,
    TenantJob,
)
from repro.serve.service import (
    BreakerPolicy,
    PlacementService,
    ServiceConfig,
    ShedPolicy,
    canonical_placements,
)

__all__ = [
    "OP_ADMIT",
    "OP_DEPART",
    "OP_MEASURE",
    "OP_PHASE_CHANGE",
    "AdmissionRejected",
    "BreakerPolicy",
    "DeadlineExceeded",
    "JobOutcome",
    "PlacementService",
    "QoS",
    "ServeError",
    "ServiceConfig",
    "ServiceJournal",
    "ServiceStopped",
    "ShedPolicy",
    "TenantJob",
    "canonical_placements",
    "default_roster",
    "generate_arrivals",
    "serve_trace",
]
