"""Crash-safe resident-state journal for the placement service.

The service's warm state — tenant table, canonical placements, trace
keys — must survive a kill at *any* instruction.  Two complementary
artifacts provide that, using the same atomic tempfile+rename idiom as
:mod:`repro.sim.tracestore`:

- ``journal.jsonl`` — an append-only log of committed operations.  Every
  line embeds a CRC32 of its own canonical JSON (minus the ``crc`` key),
  so a torn tail (the classic kill-mid-write artifact) is detected and
  the valid prefix replayed; nothing before the tear is lost.
- ``state.json`` + ``state.meta.json`` — a periodic checkpoint of the
  full resident state with a CRC32 sidecar, committed via
  ``os.replace`` so readers only ever see a complete old or complete
  new checkpoint, never a partial one.

Recovery (:meth:`ServiceJournal.load`) prefers the checkpoint and
replays any journal records committed after it; a corrupt or missing
checkpoint degrades to a full journal replay.  Every corruption is
counted and reported, never silently absorbed.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.bus import emit

#: Format stamp written into every checkpoint and journal line.
JOURNAL_FORMAT = 1

_CANON = {"sort_keys": True, "separators": (",", ":")}


def _crc_of(record: dict) -> int:
    """CRC32 of a record's canonical JSON, excluding its ``crc`` field."""
    body = {k: v for k, v in record.items() if k != "crc"}
    return zlib.crc32(json.dumps(body, **_CANON).encode("utf-8"))


@dataclass
class ServiceJournal:
    """Append-only operation log plus checkpointed resident state."""

    root: Path
    #: Corrupt artifacts detected while loading (torn lines, bad CRCs).
    corruptions: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._seq = 0
        self._tmp_seq = 0

    # -- paths ----------------------------------------------------------
    @property
    def journal_path(self) -> Path:
        return self.root / "journal.jsonl"

    @property
    def state_path(self) -> Path:
        return self.root / "state.json"

    @property
    def meta_path(self) -> Path:
        return self.root / "state.meta.json"

    # -- the append-only log --------------------------------------------
    def append(self, record: dict) -> int:
        """Durably append one committed-operation record; returns its seq."""
        self._seq += 1
        entry = dict(record)
        entry["seq"] = self._seq
        entry["format"] = JOURNAL_FORMAT
        entry["crc"] = _crc_of(entry)
        line = json.dumps(entry, **_CANON) + "\n"
        with open(self.journal_path, "a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        return self._seq

    def replay(self) -> list[dict]:
        """Every valid journal record, in order; stops at the first tear.

        A record whose line fails to parse or whose CRC mismatches marks
        the end of the trustworthy prefix — a kill mid-append can only
        tear the *last* line, so everything before it is intact.
        """
        if not self.journal_path.exists():
            return []
        records: list[dict] = []
        for lineno, line in enumerate(
            self.journal_path.read_text(encoding="utf-8").splitlines(), 1
        ):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                self._flag(f"journal line {lineno}: torn write, truncating")
                break
            if not isinstance(entry, dict) or entry.get("crc") != _crc_of(entry):
                self._flag(f"journal line {lineno}: CRC mismatch, truncating")
                break
            records.append(entry)
        return records

    # -- checkpoints ----------------------------------------------------
    def checkpoint(self, state: dict) -> None:
        """Atomically replace the resident-state checkpoint."""
        payload = dict(state)
        payload["format"] = JOURNAL_FORMAT
        payload["seq"] = self._seq
        blob = json.dumps(payload, **_CANON).encode("utf-8")
        meta = json.dumps(
            {"format": JOURNAL_FORMAT, "crc32": zlib.crc32(blob)}, **_CANON
        ).encode("utf-8")
        self._commit(self.state_path, blob)
        self._commit(self.meta_path, meta)

    def load(self) -> tuple[dict | None, list[dict]]:
        """Recover ``(checkpoint_state, records_after_checkpoint)``.

        Resets the append counter so post-recovery appends continue the
        sequence.  A bad checkpoint (missing, torn, CRC mismatch) falls
        back to ``(None, all_valid_records)`` — the caller replays the
        log from scratch.
        """
        records = self.replay()
        self._seq = records[-1]["seq"] if records else 0
        state = self._load_checkpoint()
        if state is None:
            return None, records
        seq = int(state.get("seq", 0))
        self._seq = max(self._seq, seq)
        return state, [r for r in records if r["seq"] > seq]

    def _load_checkpoint(self) -> dict | None:
        try:
            blob = self.state_path.read_bytes()
            meta = json.loads(self.meta_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(meta, dict) or meta.get("crc32") != zlib.crc32(blob):
            self._flag("state.json: CRC mismatch, falling back to replay")
            return None
        try:
            state = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._flag("state.json: unparsable, falling back to replay")
            return None
        return state if isinstance(state, dict) else None

    # -- internals ------------------------------------------------------
    def _commit(self, path: Path, blob: bytes) -> None:
        """Write-then-rename so readers never observe a partial file."""
        self._tmp_seq += 1
        tmp = path.parent / f".{path.name}.{os.getpid()}.{self._tmp_seq}.tmp"
        try:
            with open(tmp, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()

    def _flag(self, message: str) -> None:
        self.corruptions.append(message)
        emit("serve.journal_corrupt", detail=message, source="serve")
