"""Wall-clock regression gate over ``BENCH_parallel.json`` records.

``make bench-smoke`` runs one small figure benchmark through the process
pool and leaves fresh timing rows behind; this module compares them
against the committed ``BENCH_parallel.json`` at the repository root and
prints a warning table for every stage that got more than
``DEFAULT_THRESHOLD`` slower.  Timings are machine-dependent, so the
gate *warns* by default (exit 0); ``--strict`` turns warnings into a
non-zero exit for CI machines that are stable enough to enforce it.

Matching is keyed by ``(benchmark, jobs, phase)``.  When the committed
baseline has no row for that exact phase (the smoke run does not tag
phases; the scaling sweep does), the fresh row is compared against the
*slowest* committed row of the same ``(benchmark, jobs)`` — a warning
then means "slower than even the worst committed timing for this
stage", which keeps false positives low on noisy machines.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

#: Fractional slowdown above which a stage lands in the warning table.
DEFAULT_THRESHOLD = 0.25

#: The committed baseline record file (repository root).
BASELINE_PATH = Path(__file__).resolve().parents[3] / "BENCH_parallel.json"


@dataclass(frozen=True)
class Regression:
    """One stage that came out slower than its committed baseline."""

    benchmark: str
    jobs: int
    phase: str
    fresh_seconds: float
    baseline_seconds: float

    @property
    def slowdown(self) -> float:
        """Fractional slowdown (0.30 == 30% slower than baseline)."""
        if self.baseline_seconds <= 0:
            return 0.0
        return self.fresh_seconds / self.baseline_seconds - 1.0


def load_rows(path: str | Path) -> list[dict]:
    """The timing rows of one record file ([] when absent/corrupt)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return []
    if not isinstance(payload, list):
        return []
    return [row for row in payload if isinstance(row, dict)]


def _key(row: dict) -> tuple[str, int, str]:
    return (
        str(row.get("benchmark", "")),
        int(row.get("jobs", 0)),
        str(row.get("phase", "")),
    )


def compare(
    fresh: list[dict],
    baseline: list[dict],
    threshold: float = DEFAULT_THRESHOLD,
) -> list[Regression]:
    """Fresh rows more than ``threshold`` slower than their baseline.

    Fresh rows without any matching baseline are skipped — a new
    benchmark cannot regress against nothing.
    """
    exact: dict[tuple[str, int, str], float] = {}
    loose: dict[tuple[str, int], float] = {}
    for row in baseline:
        wall = float(row.get("wall_seconds", 0.0))
        if wall <= 0:
            continue
        benchmark, jobs, phase = _key(row)
        key = (benchmark, jobs, phase)
        exact[key] = max(exact.get(key, 0.0), wall)
        loose_key = (benchmark, jobs)
        loose[loose_key] = max(loose.get(loose_key, 0.0), wall)
    regressions: list[Regression] = []
    for row in fresh:
        wall = float(row.get("wall_seconds", 0.0))
        if wall <= 0:
            continue
        benchmark, jobs, phase = _key(row)
        base = exact.get((benchmark, jobs, phase))
        if base is None:
            base = loose.get((benchmark, jobs))
        if base is None:
            continue
        if wall > base * (1.0 + threshold):
            regressions.append(
                Regression(
                    benchmark=benchmark,
                    jobs=jobs,
                    phase=phase,
                    fresh_seconds=wall,
                    baseline_seconds=base,
                )
            )
    return regressions


def cold_parallel_warnings(rows: list[dict]) -> list[str]:
    """Cold parallel phases that ran *slower* than the serial baseline.

    The scaling sweep (``benchmarks/run_scaling.py``) tags its rows
    ``serial`` / ``cold-N`` / ``warm-N`` per benchmark.  A cold parallel
    run that loses to serial means the fan-out overhead (fork, store
    population, shm publish) ate the whole parallelism win — the
    regression this repo's data plane exists to prevent.  Warn-only:
    cold timings are the noisiest rows we record, and
    ``run_scaling.py`` applies its own calibrated tolerance gate.
    Per-stage breakdowns (the ``stages`` field each row now carries)
    are echoed so the slow stage names itself.
    """
    serial: dict[str, float] = {}
    for row in rows:
        if str(row.get("phase", "")) == "serial":
            wall = float(row.get("wall_seconds", 0.0))
            if wall > 0:
                benchmark = str(row.get("benchmark", ""))
                serial[benchmark] = max(serial.get(benchmark, 0.0), wall)
    warnings: list[str] = []
    for row in rows:
        phase = str(row.get("phase", ""))
        if not phase.startswith("cold-"):
            continue
        benchmark = str(row.get("benchmark", ""))
        base = serial.get(benchmark)
        wall = float(row.get("wall_seconds", 0.0))
        if base is None or wall <= base:
            continue
        warnings.append(
            f"bench-regression: WARNING — {benchmark} {phase} took "
            f"{wall:.3f} s vs serial {base:.3f} s "
            f"({wall / base - 1.0:.0%} slower); fan-out overhead exceeds "
            "the parallelism win"
        )
        stages = row.get("stages")
        if isinstance(stages, dict) and stages:
            parts = ", ".join(
                f"{name} {info.get('seconds', 0.0):.2f}s"
                for name, info in sorted(stages.items())
                if isinstance(info, dict)
            )
            warnings.append(f"  stage breakdown: {parts}")
    return warnings


def render_table(
    regressions: list[Regression], threshold: float = DEFAULT_THRESHOLD
) -> str:
    """The warning table (or the all-clear line) for a comparison."""
    if not regressions:
        return f"bench-regression: no stage more than {threshold:.0%} slower"
    lines = [
        f"bench-regression: WARNING — {len(regressions)} stage(s) more "
        f"than {threshold:.0%} slower than committed BENCH_parallel.json",
        f"{'benchmark':<24} {'jobs':>4} {'phase':<10} "
        f"{'fresh (s)':>10} {'baseline (s)':>13} {'slowdown':>9}",
        "-" * 76,
    ]
    for reg in sorted(regressions, key=lambda r: -r.slowdown):
        lines.append(
            f"{reg.benchmark:<24} {reg.jobs:>4} {reg.phase or '-':<10} "
            f"{reg.fresh_seconds:>10.3f} {reg.baseline_seconds:>13.3f} "
            f"{reg.slowdown:>8.0%}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.regression",
        description="compare fresh bench timings against the committed "
        "BENCH_parallel.json",
    )
    parser.add_argument(
        "--fresh", required=True, metavar="PATH",
        help="record file the benchmark run just wrote",
    )
    parser.add_argument(
        "--baseline", default=str(BASELINE_PATH), metavar="PATH",
        help="committed baseline records (default: repo BENCH_parallel.json)",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="fractional slowdown that triggers a warning (default: 0.25)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any stage regresses (default: warn only)",
    )
    args = parser.parse_args(argv)
    fresh = load_rows(args.fresh)
    if not fresh:
        print(f"bench-regression: no fresh timing rows at {args.fresh}")
        return 0
    baseline = load_rows(args.baseline)
    if not baseline:
        print(f"bench-regression: no baseline rows at {args.baseline}; "
              "nothing to compare against")
        return 0
    regressions = compare(fresh, baseline, args.threshold)
    print(render_table(regressions, args.threshold))
    for warning in cold_parallel_warnings(fresh):
        print(warning)
    if regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
