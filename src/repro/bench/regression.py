"""Wall-clock regression gate over ``BENCH_parallel.json`` records.

``make bench-smoke`` runs one small figure benchmark through the process
pool and leaves fresh timing rows behind; this module compares them
against the committed ``BENCH_parallel.json`` at the repository root and
prints a warning table for every stage that got more than
``DEFAULT_THRESHOLD`` slower.  Timings are machine-dependent, so the
gate *warns* by default (exit 0); ``--strict`` turns warnings into a
non-zero exit for CI machines that are stable enough to enforce it.

Matching is keyed by ``(benchmark, jobs, phase)``.  When the committed
baseline has no row for that exact phase (the smoke run does not tag
phases; the scaling sweep does), the fresh row is compared against the
*slowest* committed row of the same ``(benchmark, jobs)`` — a warning
then means "slower than even the worst committed timing for this
stage", which keeps false positives low on noisy machines.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

#: Fractional slowdown above which a stage lands in the warning table.
DEFAULT_THRESHOLD = 0.25

#: Wall-overhead budget for the telemetry plane (``obs_overhead`` rows).
OBS_OVERHEAD_LIMIT = 0.03

#: Fractional wall noise ignored before a cold phase counts as "slower
#: than serial" in :func:`diagnose_cold_parallel`.  Cold runs are the
#: noisiest timings we take (store I/O, fork, page-cache state); a 5%
#: loss is indistinguishable from run-to-run jitter.
COLD_NOISE_TOLERANCE = 0.05

#: Row kinds that are annotations/invariants, never wall timings.
ANNOTATION_KINDS = ("cold_parallel_warning", "cold_parallel_speedup")

#: The committed baseline record file (repository root).
BASELINE_PATH = Path(__file__).resolve().parents[3] / "BENCH_parallel.json"


@dataclass(frozen=True)
class Regression:
    """One stage that came out slower than its committed baseline."""

    benchmark: str
    jobs: int
    phase: str
    fresh_seconds: float
    baseline_seconds: float

    @property
    def slowdown(self) -> float:
        """Fractional slowdown (0.30 == 30% slower than baseline)."""
        if self.baseline_seconds <= 0:
            return 0.0
        return self.fresh_seconds / self.baseline_seconds - 1.0


def load_rows(path: str | Path) -> list[dict]:
    """The timing rows of one record file ([] when absent/corrupt)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return []
    if not isinstance(payload, list):
        return []
    return [row for row in payload if isinstance(row, dict)]


def _key(row: dict) -> tuple[str, int, str]:
    return (
        str(row.get("benchmark", "")),
        int(row.get("jobs", 0)),
        str(row.get("phase", "")),
    )


def compare(
    fresh: list[dict],
    baseline: list[dict],
    threshold: float = DEFAULT_THRESHOLD,
) -> list[Regression]:
    """Fresh rows more than ``threshold`` slower than their baseline.

    Fresh rows without any matching baseline are skipped — a new
    benchmark cannot regress against nothing.
    """
    exact: dict[tuple[str, int, str], float] = {}
    loose: dict[tuple[str, int], float] = {}
    for row in baseline:
        if row.get("kind") in ANNOTATION_KINDS:
            continue
        wall = float(row.get("wall_seconds", 0.0))
        if wall <= 0:
            continue
        benchmark, jobs, phase = _key(row)
        key = (benchmark, jobs, phase)
        exact[key] = max(exact.get(key, 0.0), wall)
        loose_key = (benchmark, jobs)
        loose[loose_key] = max(loose.get(loose_key, 0.0), wall)
    regressions: list[Regression] = []
    for row in fresh:
        if row.get("kind") in ANNOTATION_KINDS:
            continue  # diagnosis/invariant rows are annotations, not timings
        wall = float(row.get("wall_seconds", 0.0))
        if wall <= 0:
            continue
        benchmark, jobs, phase = _key(row)
        base = exact.get((benchmark, jobs, phase))
        if base is None:
            base = loose.get((benchmark, jobs))
        if base is None:
            continue
        if wall > base * (1.0 + threshold):
            regressions.append(
                Regression(
                    benchmark=benchmark,
                    jobs=jobs,
                    phase=phase,
                    fresh_seconds=wall,
                    baseline_seconds=base,
                )
            )
    return regressions


def _stage_seconds(row: dict) -> dict[str, float]:
    stages = row.get("stages")
    if not isinstance(stages, dict):
        return {}
    return {
        name: float(info.get("seconds", 0.0))
        for name, info in stages.items()
        if isinstance(info, dict)
    }


def _suspect_cause(row: dict, serial_row: dict | None, wall: float) -> str:
    """Name the most likely reason a cold parallel phase lost to serial."""
    stages = _stage_seconds(row)
    cache = row.get("cache") if isinstance(row.get("cache"), dict) else {}
    cold = int(cache.get("cold", 0))
    store_hits = int(cache.get("store", 0))
    offstage = wall - sum(stages.values())
    causes: list[str] = []
    if cold > 0 and store_hits == 0:
        causes.append(
            f"all {cold} cells cold with distinct trace keys: the "
            "primer-wave schedule degenerates to one ordered wave, so "
            "no worker ever reuses another's store entry mid-run"
        )
    if serial_row is not None:
        serial_stages = _stage_seconds(serial_row)
        serial_offstage = float(serial_row.get("wall_seconds", 0.0)) - sum(
            serial_stages.values()
        )
        if stages and serial_stages:
            grown = {
                name: stages[name] - serial_stages.get(name, 0.0)
                for name in stages
                if stages[name] - serial_stages.get(name, 0.0) > 0.5
            }
            if grown:
                worst = max(grown, key=grown.get)
                causes.append(
                    f"stage {worst} grew {grown[worst]:.1f}s vs serial"
                )
        extra_off = offstage - serial_offstage
        if extra_off > 0.5:
            causes.append(
                f"off-stage overhead (fork/IPC, store writeback, "
                f"scheduler waits) grew {extra_off:.1f}s vs serial"
            )
    elif offstage > 0.5:
        causes.append(
            f"off-stage overhead (fork/IPC, store writeback) is "
            f"{offstage:.1f}s of the wall"
        )
    if not causes:
        causes.append("fan-out overhead exceeds the parallelism win")
    return "; ".join(causes)


def diagnose_cold_parallel(rows: list[dict]) -> list[dict]:
    """Structured diagnosis rows for cold parallel phases slower than serial.

    The scaling sweep (``benchmarks/run_scaling.py``) tags its rows
    ``serial`` / ``cold-N`` / ``warm-N`` per benchmark.  A cold parallel
    run that loses to serial means the fan-out overhead (fork, store
    population, shm publish) ate the whole parallelism win — the
    regression this repo's data plane exists to prevent.  Each returned
    row is JSON-ready and names a ``suspected_cause`` derived from the
    cache counters, the per-stage deltas against the serial row, and the
    off-stage residual (wall minus the sum of instrumented stages); the
    sweep appends these rows to ``BENCH_parallel.json`` so the committed
    record *documents* the regression instead of silently carrying it.
    """
    serial_rows: dict[str, dict] = {}
    for row in rows:
        if str(row.get("phase", "")) == "serial":
            wall = float(row.get("wall_seconds", 0.0))
            benchmark = str(row.get("benchmark", ""))
            best = serial_rows.get(benchmark)
            if wall > 0 and (
                best is None or wall > float(best.get("wall_seconds", 0.0))
            ):
                serial_rows[benchmark] = row
    diagnoses: list[dict] = []
    for row in rows:
        if row.get("kind") in ANNOTATION_KINDS:
            continue  # never re-diagnose an annotation row
        phase = str(row.get("phase", ""))
        if not phase.startswith("cold-"):
            continue
        benchmark = str(row.get("benchmark", ""))
        serial_row = serial_rows.get(benchmark)
        base = (
            float(serial_row.get("wall_seconds", 0.0)) if serial_row else 0.0
        )
        wall = float(row.get("wall_seconds", 0.0))
        if serial_row is None or wall <= base * (1.0 + COLD_NOISE_TOLERANCE):
            continue
        stages = _stage_seconds(row)
        serial_stages = _stage_seconds(serial_row)
        diagnoses.append(
            {
                "kind": "cold_parallel_warning",
                "benchmark": benchmark,
                "phase": phase,
                "jobs": int(row.get("jobs", 0)),
                "wall_seconds": round(wall, 3),
                "serial_seconds": round(base, 3),
                "slowdown": round(wall / base - 1.0, 4),
                "offstage_seconds": round(wall - sum(stages.values()), 3),
                "stage_deltas": {
                    name: round(
                        stages[name] - serial_stages.get(name, 0.0), 3
                    )
                    for name in sorted(stages)
                },
                "suspected_cause": _suspect_cause(row, serial_row, wall),
            }
        )
    return diagnoses


def cold_parallel_warnings(rows: list[dict]) -> list[str]:
    """Textual rendering of :func:`diagnose_cold_parallel` (warn-only).

    Cold timings are the noisiest rows we record, and the sweep's
    ``cold_parallel_speedup`` invariant rows carry the enforced gate
    (:func:`cold_speedup_violations`), so these annotations never fail
    the build on their own.
    """
    warnings: list[str] = []
    for diag in diagnose_cold_parallel(rows):
        warnings.append(
            f"bench-regression: WARNING — {diag['benchmark']} "
            f"{diag['phase']} took {diag['wall_seconds']:.3f} s vs serial "
            f"{diag['serial_seconds']:.3f} s ({diag['slowdown']:.0%} "
            f"slower); {diag['suspected_cause']}"
        )
        if diag["stage_deltas"]:
            parts = ", ".join(
                f"{name} {delta:+.2f}s"
                for name, delta in diag["stage_deltas"].items()
            )
            warnings.append(
                f"  stage deltas vs serial: {parts}; off-stage "
                f"{diag['offstage_seconds']:.2f}s"
            )
    return warnings


def obs_overhead_violations(fresh: list[dict]) -> list[str]:
    """``obs_overhead`` rows whose tracing-on run blew the wall budget.

    Unlike :func:`compare`, this gate needs no committed baseline — the
    row carries its own tracing-off control timing, so a fresh record is
    judged absolutely: telemetry costing more than
    :data:`OBS_OVERHEAD_LIMIT` of the wall fails ``--strict`` outright.
    """
    problems: list[str] = []
    for row in fresh:
        if str(row.get("benchmark", "")) != "obs_overhead":
            continue
        overhead = float(row.get("overhead_fraction", 0.0))
        limit = float(row.get("limit", OBS_OVERHEAD_LIMIT))
        if overhead > limit:
            problems.append(
                f"bench-regression: WARNING — telemetry overhead "
                f"{overhead:.1%} exceeds the {limit:.0%} budget "
                f"(tracing on {float(row.get('wall_seconds', 0.0)):.4f} s "
                f"vs off {float(row.get('baseline_seconds', 0.0)):.4f} s)"
            )
    return problems


def cold_speedup_violations(rows: list[dict]) -> list[str]:
    """``cold_parallel_speedup`` rows that fell below their own floor.

    The scaling sweep records the cold-parallel-vs-serial speedup as an
    invariant row carrying its own machine-calibrated ``floor`` (1.0 on
    multicore hosts, slightly under on single-CPU machines where the
    pipeline can only hide store I/O, not compute).  Like
    :func:`obs_overhead_violations` this gate is absolute — no committed
    baseline is needed, so both the fresh record and the committed one
    can be judged, and ``--strict`` fails either falling below floor.
    """
    problems: list[str] = []
    for row in rows:
        if row.get("kind") != "cold_parallel_speedup":
            continue
        speedup = float(row.get("speedup", 0.0))
        floor = float(row.get("floor", 1.0))
        if speedup < floor:
            problems.append(
                f"bench-regression: WARNING — cold parallel speedup "
                f"{speedup:.3f}x for {row.get('benchmark', '?')} at "
                f"{int(row.get('jobs', 0))} jobs is below the "
                f"{floor:.2f}x floor (cold parallel must not lose to "
                f"serial)"
            )
    return problems


def render_table(
    regressions: list[Regression], threshold: float = DEFAULT_THRESHOLD
) -> str:
    """The warning table (or the all-clear line) for a comparison."""
    if not regressions:
        return f"bench-regression: no stage more than {threshold:.0%} slower"
    lines = [
        f"bench-regression: WARNING — {len(regressions)} stage(s) more "
        f"than {threshold:.0%} slower than committed BENCH_parallel.json",
        f"{'benchmark':<24} {'jobs':>4} {'phase':<10} "
        f"{'fresh (s)':>10} {'baseline (s)':>13} {'slowdown':>9}",
        "-" * 76,
    ]
    for reg in sorted(regressions, key=lambda r: -r.slowdown):
        lines.append(
            f"{reg.benchmark:<24} {reg.jobs:>4} {reg.phase or '-':<10} "
            f"{reg.fresh_seconds:>10.3f} {reg.baseline_seconds:>13.3f} "
            f"{reg.slowdown:>8.0%}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.regression",
        description="compare fresh bench timings against the committed "
        "BENCH_parallel.json",
    )
    parser.add_argument(
        "--fresh", required=True, metavar="PATH",
        help="record file the benchmark run just wrote",
    )
    parser.add_argument(
        "--baseline", default=str(BASELINE_PATH), metavar="PATH",
        help="committed baseline records (default: repo BENCH_parallel.json)",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="fractional slowdown that triggers a warning (default: 0.25)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any stage regresses (default: warn only)",
    )
    args = parser.parse_args(argv)
    fresh = load_rows(args.fresh)
    if not fresh:
        print(f"bench-regression: no fresh timing rows at {args.fresh}")
        return 0
    baseline = load_rows(args.baseline)
    if not baseline:
        print(f"bench-regression: no baseline rows at {args.baseline}; "
              "nothing to compare against")
        return 0
    regressions = compare(fresh, baseline, args.threshold)
    print(render_table(regressions, args.threshold))
    for warning in cold_parallel_warnings(fresh):
        print(warning)
    overhead_problems = obs_overhead_violations(fresh)
    for warning in overhead_problems:
        print(warning)
    # The cold-speedup invariant is self-judging (the row carries its
    # floor), so enforce it on the fresh record *and* the committed one:
    # a refresh must never land a below-floor speedup in the baseline.
    speedup_problems = cold_speedup_violations(fresh) + [
        f"{problem} [committed baseline]"
        for problem in cold_speedup_violations(baseline)
    ]
    for warning in speedup_problems:
        print(warning)
    failures = regressions or overhead_problems or speedup_problems
    if failures and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
