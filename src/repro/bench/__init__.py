"""Benchmark harness library.

- :mod:`repro.bench.workloads` — the benchmark configuration (apps,
  datasets, platforms at reproduction scale) and a memoised run cache so
  the figures and tables that share runs (Fig. 5/6/7/8, Table 3) compute
  them once.
- :mod:`repro.bench.figures` — one function per paper figure, returning
  renderable tables/series.
- :mod:`repro.bench.tables` — one function per paper table.
- :mod:`repro.bench.report` — plain-text table/series rendering and saving.
"""

from repro.bench.report import Series, Table
from repro.bench.workloads import (
    BENCH_APPS,
    BENCH_DATASETS,
    bench_scale,
    overall_results,
)

__all__ = [
    "BENCH_APPS",
    "BENCH_DATASETS",
    "Series",
    "Table",
    "bench_scale",
    "overall_results",
]
