"""Structured benchmark-result recording.

`repro.bench.report` renders human-readable artifacts; this module keeps
the same results as machine-readable JSON so that regression tracking,
plotting, and `EXPERIMENTS.md` regeneration don't re-run the grid.  Each
record stores the experiment id, the environment (scale, platform), and
the rows, with a stable schema.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.bench.report import Series, Table

SCHEMA_VERSION = 1


@dataclass
class ResultRecord:
    """One experiment's recorded outcome."""

    experiment: str
    kind: str  # "table" | "series"
    scale: int
    columns: list[str] = field(default_factory=list)
    rows: list[list[str]] = field(default_factory=list)
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION

    @classmethod
    def from_table(cls, experiment: str, table: Table, *, scale: int) -> "ResultRecord":
        return cls(
            experiment=experiment,
            kind="table",
            scale=scale,
            columns=list(table.columns),
            rows=[list(r) for r in table.rows],
            notes=list(table.notes),
        )

    @classmethod
    def from_series(
        cls, experiment: str, series: Series, *, scale: int
    ) -> "ResultRecord":
        return cls(
            experiment=experiment,
            kind="series",
            scale=scale,
            series={k: [tuple(p) for p in v] for k, v in series.data.items()},
            notes=[series.title],
        )

    def column(self, name: str) -> list[str]:
        """One column of a table record, by header name."""
        if self.kind != "table":
            raise ValueError(f"record {self.experiment!r} is not a table")
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise KeyError(
                f"column {name!r} not in {self.columns}"
            ) from None
        return [row[idx] for row in self.rows]


class ResultStore:
    """A directory of JSON result records."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, experiment: str) -> Path:
        safe = experiment.replace("/", "_")
        return self.directory / f"{safe}.json"

    def save(self, record: ResultRecord) -> Path:
        path = self._path(record.experiment)
        payload = asdict(record)
        path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        return path

    def load(self, experiment: str) -> ResultRecord:
        path = self._path(experiment)
        if not path.exists():
            raise FileNotFoundError(f"no recorded result for {experiment!r}")
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("schema_version") != SCHEMA_VERSION:
            raise ValueError(
                f"record {experiment!r} has schema "
                f"{payload.get('schema_version')}, expected {SCHEMA_VERSION}"
            )
        payload["series"] = {
            k: [tuple(p) for p in v] for k, v in payload.get("series", {}).items()
        }
        return ResultRecord(**payload)

    def list_experiments(self) -> list[str]:
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def compare(
        self, experiment: str, new: ResultRecord, column: str, *, rel_tol: float
    ) -> list[str]:
        """Regression check: relative drift of one numeric column.

        Returns human-readable drift messages (empty = within tolerance).
        Rows are matched positionally; a row-count change is itself a
        drift.
        """
        old = self.load(experiment)
        if old.kind != "table" or new.kind != "table":
            raise ValueError("compare() only supports table records")
        drifts: list[str] = []
        old_vals = old.column(column)
        new_vals = new.column(column)
        if len(old_vals) != len(new_vals):
            return [
                f"{experiment}: row count changed "
                f"{len(old_vals)} -> {len(new_vals)}"
            ]
        for i, (a, b) in enumerate(zip(old_vals, new_vals)):
            try:
                fa, fb = float(a), float(b)
            except ValueError:
                continue
            if fa == 0.0 and fb == 0.0:
                continue
            denom = max(abs(fa), abs(fb), 1e-12)
            drift = abs(fa - fb) / denom
            if drift > rel_tol:
                drifts.append(
                    f"{experiment} row {i} {column}: {fa:g} -> {fb:g} "
                    f"({100 * drift:.1f}% drift)"
                )
        return drifts
