"""One function per paper figure.

Each returns renderable :class:`~repro.bench.report.Table` /
:class:`~repro.bench.report.Series` objects; the ``benchmarks/`` files call
them, print/save the artifacts, and assert the shape conditions.

Every builder that consumes a whole grid first primes it through
:func:`repro.bench.workloads.prime_overall_grid`, so its cells fan out
across the :class:`repro.sim.parallel.ExperimentPool` (``REPRO_JOBS``
workers) instead of being computed one by one on cache misses.
"""

from __future__ import annotations

import time

from repro.bench.report import Series, Table
from repro.bench.workloads import (
    BENCH_APPS,
    BENCH_DATASETS,
    app_factory,
    bench_platform,
    bench_scale,
    overall_results,
    prime_overall_grid,
)
from repro.core.analyzer import AnalyzerConfig
from repro.core.runtime import RuntimeConfig
from repro.sim.parallel import (
    ExperimentPool,
    JobSpec,
    record_parallel_timing,
    resolve_jobs,
)

#: The subset of apps shown in the motivation figure.
FIG1_APPS = ("PR", "SSSP", "BC")


def fig1a() -> Table:
    """Fig. 1a: all-on-NVM time normalised to all-on-DRAM, per app/dataset."""
    table = Table(
        title="Figure 1a: normalized execution time, NVM vs DRAM (NVM-DRAM testbed)",
        columns=["app", "dataset", "t_nvm_ms", "t_dram_ms", "normalized"],
        notes=["paper: slowdowns of up to 10x, largest for gather-heavy apps"],
    )
    prime_overall_grid("nvm_dram", FIG1_APPS, benchmark="fig1a")
    for app in FIG1_APPS:
        for ds in BENCH_DATASETS:
            cell = overall_results("nvm_dram", app, ds)
            t_nvm = cell.baseline.seconds
            t_dram = cell.reference.seconds
            table.add_row(app, ds, t_nvm * 1e3, t_dram * 1e3, t_nvm / t_dram)
    return table


def fig1b() -> Table:
    """Fig. 1b: all-on-DRAM time normalised to MCDRAM-preferred (KNL)."""
    table = Table(
        title="Figure 1b: normalized execution time, DRAM vs MCDRAM-p (KNL testbed)",
        columns=["app", "dataset", "t_dram_ms", "t_mcdram_p_ms", "normalized"],
        notes=["paper: up to ~3x; limited MCDRAM capacity caps the gain"],
    )
    prime_overall_grid("mcdram_dram", FIG1_APPS, benchmark="fig1b")
    for app in FIG1_APPS:
        for ds in BENCH_DATASETS:
            cell = overall_results("mcdram_dram", app, ds)
            t_dram = cell.baseline.seconds
            t_pref = cell.reference.seconds
            table.add_row(app, ds, t_dram * 1e3, t_pref * 1e3, t_dram / t_pref)
    return table


def fig5() -> Table:
    """Fig. 5: NVM-DRAM overall — baseline / ATMem / all-DRAM times."""
    table = Table(
        title="Figure 5: execution time on NVM-DRAM (baseline=all-NVM, ideal=all-DRAM)",
        columns=[
            "app",
            "dataset",
            "baseline_ms",
            "atmem_ms",
            "ideal_ms",
            "speedup",
            "vs_ideal",
        ],
        notes=["paper: 1.25x-8.4x improvement over the all-NVM baseline"],
    )
    prime_overall_grid("nvm_dram", benchmark="fig5")
    for app in BENCH_APPS:
        for ds in BENCH_DATASETS:
            cell = overall_results("nvm_dram", app, ds)
            table.add_row(
                app,
                ds,
                cell.baseline.seconds * 1e3,
                cell.atmem.seconds * 1e3,
                cell.reference.seconds * 1e3,
                cell.speedup,
                cell.slowdown_vs_reference,
            )
    return table


def fig6() -> Table:
    """Fig. 6: MCDRAM-DRAM overall — baseline / ATMem / MCDRAM-p times."""
    table = Table(
        title="Figure 6: execution time on MCDRAM-DRAM (baseline=all-DRAM, ref=MCDRAM-p)",
        columns=[
            "app",
            "dataset",
            "baseline_ms",
            "atmem_ms",
            "mcdram_p_ms",
            "speedup",
            "vs_mcdram_p",
        ],
        notes=[
            "paper: 1.1x-3x over baseline; ATMem beats MCDRAM-p on the "
            "datasets that exceed MCDRAM capacity"
        ],
    )
    prime_overall_grid("mcdram_dram", benchmark="fig6")
    for app in BENCH_APPS:
        for ds in BENCH_DATASETS:
            cell = overall_results("mcdram_dram", app, ds)
            table.add_row(
                app,
                ds,
                cell.baseline.seconds * 1e3,
                cell.atmem.seconds * 1e3,
                cell.reference.seconds * 1e3,
                cell.speedup,
                cell.slowdown_vs_reference,
            )
    return table


def fig7() -> Table:
    """Fig. 7: data ratio placed in DRAM on the NVM-DRAM testbed."""
    return _data_ratio_table(
        "nvm_dram",
        "Figure 7: data ratio placed on DRAM (NVM-DRAM testbed)",
        "paper: 5%-18% of data selected",
    )


def fig8() -> Table:
    """Fig. 8: data ratio placed in MCDRAM on the KNL testbed."""
    return _data_ratio_table(
        "mcdram_dram",
        "Figure 8: data ratio placed on MCDRAM (MCDRAM-DRAM testbed)",
        "paper: 3.8%-18.2% of data selected",
    )


def _data_ratio_table(platform_name: str, title: str, note: str) -> Table:
    table = Table(
        title=title,
        columns=["app", "dataset", "data_ratio", "selected_KiB", "total_KiB"],
        notes=[note],
    )
    prime_overall_grid(platform_name, benchmark=f"data_ratio[{platform_name}]")
    for app in BENCH_APPS:
        for ds in BENCH_DATASETS:
            cell = overall_results(platform_name, app, ds)
            decision = cell.atmem.decision
            table.add_row(
                app,
                ds,
                cell.atmem.data_ratio,
                decision.selected_bytes() / 1024.0,
                decision.total_bytes / 1024.0,
            )
    return table


EPSILON_SWEEP = (0.02, 0.05, 0.10, 0.18, 0.25, 0.35, 0.5, 0.7, 0.9)


def ratio_sweep(platform_name: str, datasets=BENCH_DATASETS, *, jobs=None) -> Series:
    """Figs. 9/10: sweep epsilon in Eq. 5 -> (data ratio, BFS time) curves.

    Every (dataset, epsilon) point and every static endpoint is an
    independent job, so the whole sweep fans out across the pool; each
    worker computes a dataset's BFS trace and hit mask once and reuses
    them for all of that dataset's points it runs.
    """
    figure = "Figure 9" if platform_name == "nvm_dram" else "Figure 10"
    series = Series(
        title=(
            f"{figure}: data-ratio impact on BFS time ({platform_name}); "
            "each point is one epsilon value"
        ),
        x_label="data ratio on fast memory",
        y_label="BFS time (s)",
    )
    platform = bench_platform(platform_name)
    specs: list[JobSpec] = []
    for ds in datasets:
        factory = app_factory("BFS", ds)
        for eps in EPSILON_SWEEP:
            config = RuntimeConfig(
                analyzer=AnalyzerConfig(m=4, base_tr_threshold=0.5, epsilon=eps)
            )
            specs.append(
                JobSpec(
                    app=factory,
                    platform=platform,
                    flow="atmem",
                    runtime_config=config,
                    value=eps,
                    tag=ds,
                )
            )
        # Anchor the curve with the static endpoints.
        specs.append(
            JobSpec(app=factory, platform=platform, flow="static", placement="slow", tag=ds)
        )
        if platform_name == "nvm_dram":
            specs.append(
                JobSpec(app=factory, platform=platform, flow="static", placement="fast", tag=ds)
            )
    n_jobs = resolve_jobs(jobs)
    pool = ExperimentPool(n_jobs)
    start = time.perf_counter()
    results = pool.run(specs)
    elapsed = time.perf_counter() - start
    for spec, result in zip(specs, results):
        if spec.flow == "atmem":
            series.add_point(spec.tag, result.data_ratio, result.seconds)
        else:
            x = 1.0 if spec.placement == "fast" else 0.0
            series.add_point(spec.tag, x, result.seconds)
    record_parallel_timing(
        {
            "benchmark": f"ratio_sweep[{platform_name}]",
            "jobs": n_jobs,
            "mode": pool.last_mode,
            "cells": len(specs),
            "scale": bench_scale(),
            "wall_seconds": round(elapsed, 3),
            "cache": {
                "cold": pool.health.cold_jobs,
                "warm": pool.health.warm_jobs,
                "store": pool.health.store_jobs,
            },
        }
    )
    return series
