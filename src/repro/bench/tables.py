"""One function per paper table (plus the Section 7.4 overhead analysis).

Grid-shaped tables prime their cells through
:func:`repro.bench.workloads.prime_overall_grid`; Table 4's paired
ATMem/mbind runs are independent jobs and fan out directly across the
:class:`repro.sim.parallel.ExperimentPool` (``REPRO_JOBS`` workers).
"""

from __future__ import annotations

from repro.bench.report import Table
from repro.bench.workloads import (
    BENCH_APPS,
    BENCH_DATASETS,
    app_factory,
    bench_platform,
    overall_results,
    prime_overall_grid,
)
from repro.core.runtime import RuntimeConfig
from repro.sim.parallel import ExperimentPool, JobSpec


def table3() -> Table:
    """Table 3: ATMem slowdown vs the all-DRAM ideal, min/max per app."""
    table = Table(
        title="Table 3: ATMem vs all-DRAM ideal on NVM-DRAM (slowdown per app)",
        columns=["app", "min_slowdown", "max_slowdown"],
        notes=[
            "paper: min 9%-54%, max 1.8x-3.0x across apps "
            "(slowdown = atmem_time/ideal_time - 1, shown as e.g. 0.25 = 25%)"
        ],
    )
    prime_overall_grid("nvm_dram", benchmark="table3")
    for app in BENCH_APPS:
        slowdowns = [
            overall_results("nvm_dram", app, ds).slowdown_vs_reference - 1.0
            for ds in BENCH_DATASETS
        ]
        table.add_row(app, min(slowdowns), max(slowdowns))
    return table


def table4() -> Table:
    """Table 4: mbind vs ATMem migration — TLB misses and migration time.

    PR on every dataset, both testbeds; values are mbind's numbers
    normalised to ATMem's (higher = ATMem better), as in the paper.
    """
    table = Table(
        title="Table 4: mbind / ATMem ratios after PR migration",
        columns=[
            "platform",
            "dataset",
            "tlb_miss_ratio",
            "migration_time_ratio",
        ],
        notes=[
            "paper: NVM-DRAM avg 20.98x TLB, 2.07x time; "
            "MCDRAM-DRAM avg 1.72x TLB, 5.32x time"
        ],
    )
    cells = []
    specs: list[JobSpec] = []
    for platform_name in ("nvm_dram", "mcdram_dram"):
        platform = bench_platform(platform_name)
        for ds in BENCH_DATASETS:
            factory = app_factory("PR", ds)
            cells.append((platform_name, ds))
            specs.append(
                JobSpec(
                    app=factory,
                    platform=platform,
                    flow="atmem",
                    count_tlb=True,
                    tag=f"{platform_name}/{ds}/atmem",
                )
            )
            specs.append(
                JobSpec(
                    app=factory,
                    platform=platform,
                    flow="atmem",
                    runtime_config=RuntimeConfig(migration_mechanism="mbind"),
                    count_tlb=True,
                    tag=f"{platform_name}/{ds}/mbind",
                )
            )
    results = ExperimentPool().run(specs)
    for i, (platform_name, ds) in enumerate(cells):
        atmem, mbind = results[2 * i], results[2 * i + 1]
        tlb_ratio = mbind.second_iteration.tlb_misses / max(
            1, atmem.second_iteration.tlb_misses
        )
        time_ratio = mbind.migration.seconds / max(
            1e-12, atmem.migration.seconds
        )
        table.add_row(platform_name, ds, tlb_ratio, time_ratio)
    return table


def overhead_analysis() -> Table:
    """Section 7.4: profiling overhead and one-time cost amortisation."""
    table = Table(
        title="Section 7.4: ATMem overhead analysis (NVM-DRAM)",
        columns=[
            "app",
            "dataset",
            "profiling_pct_of_iter1",
            "migration_ms",
            "gain_per_iter_ms",
            "iters_to_amortize",
        ],
        notes=[
            "paper: profiling < 10% of the first iteration; most benchmarks "
            "amortize the one-time costs within a few iterations"
        ],
    )
    prime_overall_grid(
        "nvm_dram", datasets=("rmat24", "friendster"), benchmark="overhead_analysis"
    )
    for app in BENCH_APPS:
        for ds in ("rmat24", "friendster"):
            cell = overall_results("nvm_dram", app, ds)
            at = cell.atmem
            profiling_pct = (
                100.0 * at.profiling_overhead_seconds / at.first_iteration.seconds
            )
            gain = cell.baseline.seconds - at.seconds
            one_time = at.one_time_overhead_seconds
            iters = one_time / gain if gain > 0 else float("inf")
            table.add_row(
                app,
                ds,
                profiling_pct,
                at.migration.seconds * 1e3,
                gain * 1e3,
                iters,
            )
    return table
