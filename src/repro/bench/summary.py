"""Summaries across recorded benchmark results.

Reads the JSON records written by :func:`repro.bench.report.emit` and
derives the headline numbers the paper's abstract reports — per-app
average speedups, data-ratio ranges, migration improvement averages — so
`EXPERIMENTS.md`-style summaries can be regenerated mechanically from a
benchmark run instead of transcribed by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.bench.recorder import ResultRecord, ResultStore


@dataclass
class HeadlineNumbers:
    """The abstract-level summary of one benchmark run."""

    nvm_speedup_range: tuple[float, float] | None = None
    nvm_per_app_avg: dict[str, float] | None = None
    mcdram_speedup_range: tuple[float, float] | None = None
    data_ratio_range: tuple[float, float] | None = None
    migration_time_avg: dict[str, float] | None = None

    def render(self) -> str:
        lines = ["== Headline numbers (from recorded results) =="]
        if self.nvm_speedup_range:
            lo, hi = self.nvm_speedup_range
            lines.append(
                f"NVM-DRAM speedup over all-NVM baseline: {lo:.2f}x-{hi:.2f}x "
                "(paper: 1.25x-8.4x)"
            )
        if self.nvm_per_app_avg:
            avgs = ", ".join(
                f"{app} {value:.2f}x" for app, value in self.nvm_per_app_avg.items()
            )
            lines.append(f"per-app averages: {avgs} (paper: 1.7x-3.4x)")
        if self.mcdram_speedup_range:
            lo, hi = self.mcdram_speedup_range
            lines.append(
                f"MCDRAM-DRAM speedup over all-DRAM baseline: "
                f"{lo:.2f}x-{hi:.2f}x (paper: 1.1x-3x)"
            )
        if self.data_ratio_range:
            lo, hi = self.data_ratio_range
            lines.append(
                f"data placed on fast memory: {100 * lo:.1f}%-{100 * hi:.1f}% "
                "(paper: 5%-18%)"
            )
        if self.migration_time_avg:
            avgs = ", ".join(
                f"{platform} {value:.2f}x"
                for platform, value in self.migration_time_avg.items()
            )
            lines.append(
                f"migration speedup over mbind: {avgs} "
                "(paper: 2.07x / 5.32x)"
            )
        return "\n".join(lines)


def _speedup_stats(record: ResultRecord) -> tuple[tuple[float, float], dict[str, float]]:
    speedups = [float(v) for v in record.column("speedup")]
    apps = record.column("app")
    per_app: dict[str, list[float]] = {}
    for app, speedup in zip(apps, speedups):
        per_app.setdefault(app, []).append(speedup)
    averages = {app: float(np.mean(v)) for app, v in per_app.items()}
    return (min(speedups), max(speedups)), averages


def summarize(results_dir: str | Path) -> HeadlineNumbers:
    """Build the headline summary from a results JSON directory."""
    store = ResultStore(results_dir)
    out = HeadlineNumbers()
    available = set(store.list_experiments())
    if "fig5" in available:
        out.nvm_speedup_range, out.nvm_per_app_avg = _speedup_stats(
            store.load("fig5")
        )
    if "fig6" in available:
        out.mcdram_speedup_range, _ = _speedup_stats(store.load("fig6"))
    ratios: list[float] = []
    for experiment in ("fig7", "fig8"):
        if experiment in available:
            ratios.extend(
                float(v) for v in store.load(experiment).column("data_ratio")
            )
    if ratios:
        out.data_ratio_range = (min(ratios), max(ratios))
    if "table4" in available:
        record = store.load("table4")
        platforms = record.column("platform")
        times = [float(v) for v in record.column("migration_time_ratio")]
        grouped: dict[str, list[float]] = {}
        for platform, value in zip(platforms, times):
            grouped.setdefault(platform, []).append(value)
        out.migration_time_avg = {
            platform: float(np.mean(v)) for platform, v in grouped.items()
        }
    return out
