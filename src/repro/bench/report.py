"""Plain-text rendering of benchmark tables and figure series.

The harness prints the same rows/series the paper reports; these helpers
keep the formatting consistent and write copies under ``benchmarks/results``
so `EXPERIMENTS.md` can reference stable artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class Table:
    """A titled, column-aligned text table."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        """Append one row; cells are stringified with sensible defaults."""
        formatted = [
            f"{c:.3f}" if isinstance(c, float) else str(c) for c in cells
        ]
        if len(formatted) != len(self.columns):
            raise ValueError(
                f"row has {len(formatted)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(formatted)

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows), 1)
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


@dataclass
class Series:
    """A figure-like family of (x, y) series, one per label."""

    title: str
    x_label: str
    y_label: str
    data: dict[str, list[tuple[float, float]]] = field(default_factory=dict)

    def add_point(self, label: str, x: float, y: float) -> None:
        self.data.setdefault(label, []).append((x, y))

    def render(self) -> str:
        lines = [f"== {self.title} ==", f"({self.x_label} -> {self.y_label})"]
        for label, points in self.data.items():
            lines.append(f"[{label}]")
            for x, y in sorted(points):
                lines.append(f"  {x:10.4f}  {y:.6g}")
        return "\n".join(lines)


def emit(artifact: Table | Series, filename: str | None = None) -> str:
    """Print an artifact and optionally save it under benchmarks/results.

    Alongside the text artifact, a machine-readable JSON record is kept
    under ``benchmarks/results/json/`` (see
    :mod:`repro.bench.recorder`) so regression tooling never has to parse
    the rendered tables.
    """
    text = artifact.render()
    print("\n" + text)
    if filename:
        out_dir = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / filename).write_text(text + "\n", encoding="utf-8")
        _record_json(artifact, filename.rsplit(".", 1)[0], out_dir / "json")
    return text


def _record_json(artifact: Table | Series, experiment: str, directory: Path) -> None:
    from repro.bench.recorder import ResultRecord, ResultStore
    from repro.bench.workloads import bench_scale

    store = ResultStore(directory)
    if isinstance(artifact, Table):
        record = ResultRecord.from_table(experiment, artifact, scale=bench_scale())
    else:
        record = ResultRecord.from_series(experiment, artifact, scale=bench_scale())
    store.save(record)
