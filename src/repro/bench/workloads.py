"""Benchmark configuration and the shared, memoised run cache.

The paper's overall evaluation (Figures 5-8, Table 3) derives from one grid
of runs: {5 apps} x {5 datasets} x {baseline, reference, ATMem} on each
testbed.  ``overall_results`` computes each cell once per process and every
figure/table renders from the cache.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(default 2048, i.e. 1/2048 of the published input sizes; platform capacity
scaling tracks it automatically).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.apps import make_app
from repro.apps.base import GraphApp
from repro.config import PlatformConfig, platform_by_name
from repro.graph.datasets import DATASET_NAMES, dataset_by_name
from repro.sim.experiment import AtMemRunResult, StaticRunResult, run_atmem, run_static

#: Apps in the order of the paper's figures.
BENCH_APPS = ("BFS", "SSSP", "PR", "BC", "CC")
BENCH_DATASETS = DATASET_NAMES

#: Per-app constructor arguments used across all benchmarks.
APP_KWARGS = {
    "BFS": {},
    "SSSP": {},
    "PR": {"num_sweeps": 2},
    "BC": {"num_sources": 2},
    "CC": {},
}


def bench_scale() -> int:
    """The input/capacity scale for benchmark runs (env-tunable)."""
    return int(os.environ.get("REPRO_BENCH_SCALE", "2048"))


def bench_platform(name: str) -> PlatformConfig:
    """A testbed preset whose capacities track the benchmark scale.

    Capacities use half the graph scale: the CSR stores both directions of
    every undirected edge, doubling the byte size relative to the paper's
    directed edge counts, and the capacity geometry that drives Figure 6
    (adjacency *just* fits MCDRAM for twitter/friendster while the whole
    dataset does not) must be preserved.
    """
    return platform_by_name(name, scale=max(1, bench_scale() // 2))


def app_factory(app_name: str, dataset: str):
    """A zero-argument factory building a fresh app on the cached dataset."""
    graph = dataset_by_name(dataset, scale=bench_scale())

    def factory() -> GraphApp:
        return make_app(app_name, graph, **APP_KWARGS[app_name])

    return factory


@dataclass
class OverallCell:
    """One (app, dataset) cell of the overall-performance grid."""

    baseline: StaticRunResult
    reference: StaticRunResult  # all-fast ideal (NVM) or MCDRAM-p (KNL)
    atmem: AtMemRunResult

    @property
    def speedup(self) -> float:
        """ATMem speedup over the all-slow baseline."""
        return self.baseline.seconds / self.atmem.seconds

    @property
    def slowdown_vs_reference(self) -> float:
        """ATMem time relative to the reference placement."""
        return self.atmem.seconds / self.reference.seconds


_OVERALL_CACHE: dict[tuple[str, str, str], OverallCell] = {}


def overall_results(platform_name: str, app_name: str, dataset: str) -> OverallCell:
    """Compute (memoised) one cell of the overall grid.

    The reference placement follows the paper: all-DRAM on the NVM testbed,
    MCDRAM-preferred (``numactl -p``) on the capacity-limited KNL testbed.
    """
    key = (platform_name, app_name, dataset)
    if key in _OVERALL_CACHE:
        return _OVERALL_CACHE[key]
    platform = bench_platform(platform_name)
    factory = app_factory(app_name, dataset)
    reference_placement = "fast" if platform_name == "nvm_dram" else "preferred"
    cell = OverallCell(
        baseline=run_static(factory, platform, "slow"),
        reference=run_static(factory, platform, reference_placement),
        atmem=run_atmem(factory, platform),
    )
    _OVERALL_CACHE[key] = cell
    return cell
