"""Benchmark configuration and the shared, memoised run cache.

The paper's overall evaluation (Figures 5-8, Table 3) derives from one grid
of runs: {5 apps} x {5 datasets} x {baseline, reference, ATMem} on each
testbed.  ``overall_results`` computes each cell once per process and every
figure/table renders from the cache.

Whole grids go through :func:`prime_overall_grid`, which fans the cells
out across the :class:`repro.sim.parallel.ExperimentPool` (``REPRO_JOBS``
workers, serial when 1) and records the measured wall-clock per batch in
``BENCH_parallel.json``.  A cell job runs its three placements against one
shared trace-cache entry, so the app's deterministic trace and LLC hit
mask are computed once per (app, dataset) rather than once per run.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(default 2048, i.e. 1/2048 of the published input sizes; platform capacity
scaling tracks it automatically).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.config import PlatformConfig, platform_by_name
from repro.graph.datasets import DATASET_NAMES
from repro.mem.trace import worker_byte_budget
from repro.sim.experiment import AtMemRunResult, StaticRunResult
from repro.sim.parallel import (
    AppSpec,
    ExperimentPool,
    JobSpec,
    record_parallel_timing,
    resolve_jobs,
)

#: Apps in the order of the paper's figures.
BENCH_APPS = ("BFS", "SSSP", "PR", "BC", "CC")
BENCH_DATASETS = DATASET_NAMES

#: Per-app constructor arguments used across all benchmarks.
APP_KWARGS = {
    "BFS": {},
    "SSSP": {},
    "PR": {"num_sweeps": 2},
    "BC": {"num_sources": 2},
    "CC": {},
}


def bench_scale() -> int:
    """The input/capacity scale for benchmark runs (env-tunable)."""
    return int(os.environ.get("REPRO_BENCH_SCALE", "2048"))


def bench_platform(name: str) -> PlatformConfig:
    """A testbed preset whose capacities track the benchmark scale.

    Capacities use half the graph scale: the CSR stores both directions of
    every undirected edge, doubling the byte size relative to the paper's
    directed edge counts, and the capacity geometry that drives Figure 6
    (adjacency *just* fits MCDRAM for twitter/friendster while the whole
    dataset does not) must be preserved.
    """
    return platform_by_name(name, scale=max(1, bench_scale() // 2))


def app_factory(app_name: str, dataset: str) -> AppSpec:
    """A zero-argument factory building a fresh app on the cached dataset.

    Returns a picklable :class:`repro.sim.parallel.AppSpec`, so the same
    factory drives in-process runs (call it) and pool fan-out (ship it).
    """
    return AppSpec.make(
        app_name, dataset, scale=bench_scale(), **APP_KWARGS[app_name]
    )


def reference_placement(platform_name: str) -> str:
    """The paper's reference placement for a testbed.

    All-DRAM on the NVM testbed; MCDRAM-preferred (``numactl -p``) on the
    capacity-limited KNL testbed.
    """
    return "fast" if platform_name == "nvm_dram" else "preferred"


@dataclass
class OverallCell:
    """One (app, dataset) cell of the overall-performance grid."""

    baseline: StaticRunResult
    reference: StaticRunResult  # all-fast ideal (NVM) or MCDRAM-p (KNL)
    atmem: AtMemRunResult

    @property
    def speedup(self) -> float:
        """ATMem speedup over the all-slow baseline."""
        return self.baseline.seconds / self.atmem.seconds

    @property
    def slowdown_vs_reference(self) -> float:
        """ATMem time relative to the reference placement."""
        return self.atmem.seconds / self.reference.seconds


_OVERALL_CACHE: dict[tuple[str, str, str], OverallCell] = {}


def _cell_spec(platform_name: str, app_name: str, dataset: str) -> JobSpec:
    return JobSpec(
        app=app_factory(app_name, dataset),
        platform=bench_platform(platform_name),
        flow="cell",
        placement=reference_placement(platform_name),
        tag=f"{platform_name}/{app_name}/{dataset}",
    )


def prime_overall_grid(
    platform_name: str,
    apps: Sequence[str] = BENCH_APPS,
    datasets: Iterable[str] = BENCH_DATASETS,
    *,
    jobs: int | None = None,
    benchmark: str | None = None,
) -> float:
    """Compute (and cache) every missing cell of a grid, in parallel.

    Returns the wall-clock seconds the batch took and appends a timing
    record to ``BENCH_parallel.json`` so speedups are measured artifacts,
    not claims.  Cached cells are skipped; a fully-cached grid costs
    nothing and records nothing.
    """
    pending = [
        (app, ds)
        for app in apps
        for ds in datasets
        if (platform_name, app, ds) not in _OVERALL_CACHE
    ]
    if not pending:
        return 0.0
    from repro.obs.metrics import process_metrics

    n_jobs = resolve_jobs(jobs)
    pool = ExperimentPool(n_jobs)

    def _priced(kind: str) -> float:
        return float(
            process_metrics().snapshot()["counters"].get(f"pricing.{kind}", 0.0)
        )

    profile_before = _priced("profile_cells")
    replay_before = _priced("replay_cells")
    start = time.perf_counter()
    cells = pool.run([_cell_spec(platform_name, app, ds) for app, ds in pending])
    elapsed = time.perf_counter() - start
    # Worker counters reach the parent via the obs drain/absorb path, so
    # the deltas describe the whole batch regardless of execution mode.
    profile_runs = _priced("profile_cells") - profile_before
    replay_runs = _priced("replay_cells") - replay_before
    for (app, ds), cell in zip(pending, cells):
        _OVERALL_CACHE[(platform_name, app, ds)] = OverallCell(
            baseline=cell.baseline, reference=cell.reference, atmem=cell.atmem
        )
    record_parallel_timing(
        {
            "benchmark": benchmark or f"overall_grid[{platform_name}]",
            "jobs": n_jobs,
            "mode": pool.last_mode,
            "cells": len(pending),
            "scale": bench_scale(),
            "wall_seconds": round(elapsed, 3),
            "pricing": "profile" if profile_runs > 0 else "replay",
            "priced_runs": {
                "profile": int(profile_runs),
                "replay": int(replay_runs),
            },
            "cache": {
                "cold": pool.health.cold_jobs,
                "warm": pool.health.warm_jobs,
                "store": pool.health.store_jobs,
            },
            "pool": {
                "cold_keys": pool.health.cold_keys,
                "cold_admitted": pool.health.cold_admitted,
                "worker_rss_bytes": pool.health.max_worker_rss_bytes,
                "worker_bytes_budget": worker_byte_budget(),
            },
        }
    )
    return elapsed


def overall_results(platform_name: str, app_name: str, dataset: str) -> OverallCell:
    """Compute (memoised) one cell of the overall grid.

    The reference placement follows the paper: all-DRAM on the NVM testbed,
    MCDRAM-preferred (``numactl -p``) on the capacity-limited KNL testbed.
    Single cells run in-process (one cell cannot fan out), but still share
    the process trace cache with everything else.
    """
    key = (platform_name, app_name, dataset)
    if key in _OVERALL_CACHE:
        return _OVERALL_CACHE[key]
    from repro.sim.parallel import execute_job

    cell = execute_job(_cell_spec(platform_name, app_name, dataset))
    result = OverallCell(
        baseline=cell.baseline, reference=cell.reference, atmem=cell.atmem
    )
    _OVERALL_CACHE[key] = result
    return result
