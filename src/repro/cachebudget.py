"""One disk budget for every on-disk cache the harness keeps.

Two subsystems persist artifacts across sessions: the graph disk cache
(:mod:`repro.graph.diskcache`, armed by ``REPRO_GRAPH_CACHE``) and the
trace store (:mod:`repro.sim.tracestore`, armed by ``REPRO_TRACE_STORE``).
Left unchecked they grow without bound — benchmark-scale traces run to
hundreds of megabytes per entry — and two divergent ad-hoc limits would
evict the wrong thing under pressure.  This module owns the single
``REPRO_CACHE_BYTES`` budget both roots share:

- an *entry* is one immediate child of a root (a ``.npz`` graph file or
  one trace-store entry directory);
- eviction is oldest-first by modification time across **both** roots
  combined, until the total drops under budget;
- loaders bump an entry's mtime on use, making the policy LRU-ish;
- the entry just written is protected, so a single artifact larger than
  the whole budget still lands (the budget bounds steady state, not one
  write).

The budget defaults to 8 GiB; ``REPRO_CACHE_BYTES=0`` disables the cap.
Writers call :func:`enforce_cache_budget` after each commit; readers call
:func:`touch_entry` after each load.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path

#: Graph disk-cache root (empty / unset disables graph caching).
GRAPH_CACHE_ENV = "REPRO_GRAPH_CACHE"

#: Trace-store root (empty / unset disables the trace store).
TRACE_STORE_ENV = "REPRO_TRACE_STORE"

#: Combined size cap in bytes over both cache roots (0 disables).
CACHE_BYTES_ENV = "REPRO_CACHE_BYTES"

#: Default combined budget: 8 GiB.
DEFAULT_CACHE_BYTES = 8 << 30


def cache_budget_bytes() -> int | None:
    """The combined byte budget, or ``None`` when the cap is disabled."""
    raw = os.environ.get(CACHE_BYTES_ENV)
    if raw is None or raw == "":
        return DEFAULT_CACHE_BYTES
    value = int(raw)
    if value < 0:
        raise ValueError(f"{CACHE_BYTES_ENV} must be >= 0, got {value}")
    return None if value == 0 else value


def budget_roots() -> list[Path]:
    """Every configured on-disk cache root (either may be absent)."""
    roots = []
    for env in (GRAPH_CACHE_ENV, TRACE_STORE_ENV):
        raw = os.environ.get(env)
        if raw:
            roots.append(Path(raw))
    return roots


def entry_size(path: Path) -> int:
    """Recursive byte size of one cache entry (file or directory)."""
    try:
        if path.is_dir():
            return sum(
                child.stat().st_size
                for child in path.rglob("*")
                if child.is_file()
            )
        return path.stat().st_size
    except OSError:
        return 0


def touch_entry(path: Path) -> None:
    """Mark an entry recently used (best effort), for LRU eviction order."""
    try:
        os.utime(path, None)
    except OSError:
        return


def _entries(roots: list[Path]) -> list[tuple[float, int, Path]]:
    found: list[tuple[float, int, Path]] = []
    for root in roots:
        try:
            children = list(root.iterdir())
        except OSError:
            continue
        for child in children:
            if child.name.startswith(".") or ".tmp" in child.name:
                continue  # in-flight temp files are not evictable entries
            try:
                mtime = child.stat().st_mtime
            except OSError:
                continue
            found.append((mtime, entry_size(child), child))
    found.sort(key=lambda item: item[0])
    return found


def enforce_cache_budget(
    *, protect: tuple[Path, ...] | set[Path] = (), budget: int | None = None
) -> list[Path]:
    """Evict oldest entries until both roots fit the budget.

    ``protect`` names entries that must survive this pass (typically the
    entry just written).  Returns the evicted paths.
    """
    limit = cache_budget_bytes() if budget is None else budget
    if limit is None:
        return []
    roots = budget_roots()
    if not roots:
        return []
    protected = {Path(p).resolve() for p in protect}
    entries = _entries(roots)
    total = sum(size for _, size, _ in entries)
    evicted: list[Path] = []
    for _, size, path in entries:
        if total <= limit:
            break
        if path.resolve() in protected:
            continue
        try:
            if path.is_dir():
                shutil.rmtree(path)
            else:
                path.unlink()
        except OSError:
            continue
        total -= size
        evicted.append(path)
    return evicted
