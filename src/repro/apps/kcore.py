"""k-core decomposition (iterative peeling).

A sixth irregular kernel beyond the paper's five, included because it is a
common graph-analytics workload with yet another access shape: rounds of
*peeling* where the active set shrinks monotonically, so the hot region
contracts over time.  One ``run_once`` computes the full coreness array.

The peeling is round-synchronous: in each round every remaining vertex
with residual degree <= k is removed, its neighbours' residual degrees
are decremented, and k increases when no vertex is removable.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import GraphApp, expand_frontier
from repro.graph.csr import CSRGraph
from repro.mem.trace import AccessKind, AccessTrace


class KCore(GraphApp):
    """Coreness of every vertex via iterative peeling."""

    name = "KCore"

    def __init__(self, graph: CSRGraph, *, max_rounds: int = 10_000) -> None:
        super().__init__(graph)
        if max_rounds <= 0:
            raise ValueError(f"max_rounds must be positive, got {max_rounds}")
        self.max_rounds = max_rounds

    def property_arrays(self) -> dict[str, np.ndarray]:
        v = self.graph.num_vertices
        return {
            "residual_degree": np.zeros(v, dtype=np.int64),
            "coreness": np.zeros(v, dtype=np.int64),
        }

    def run_once(self) -> AccessTrace:
        trace = AccessTrace()
        offsets = self.graph.offsets
        adjacency = self.graph.adjacency
        residual = self.do("residual_degree").array
        coreness = self.do("coreness").array
        residual[:] = self.graph.degrees
        coreness.fill(0)
        self._scan(trace, "residual_degree", "residual-init", is_write=True)
        alive = np.ones(self.graph.num_vertices, dtype=bool)
        k = 0
        rounds = 0
        while alive.any() and rounds < self.max_rounds:
            rounds += 1
            candidates = np.nonzero(alive & (residual <= k))[0]
            self._gather(trace, "residual_degree", np.nonzero(alive)[0], "residual-check")
            if candidates.size == 0:
                # Jump straight to the next populated peeling level.
                k = max(k + 1, int(residual[alive].min()))
                continue
            coreness[candidates] = k
            self._scatter(trace, "coreness", candidates, "coreness-write")
            alive[candidates] = False
            edge_idx = expand_frontier(offsets, candidates)
            if edge_idx.size:
                trace.add(
                    self.do("adjacency").addrs_of(edge_idx),
                    kind=AccessKind.RANDOM,
                    prefetchable=True,
                    label="adjacency-read",
                )
                neighbors = adjacency[edge_idx]
                self._gather(trace, "residual_degree", neighbors, "residual-read")
                decrements = np.bincount(
                    neighbors, minlength=self.graph.num_vertices
                )
                touched = np.nonzero(decrements)[0]
                self._scatter(trace, "residual_degree", touched, "residual-write")
                residual -= decrements
        return trace

    def result(self) -> np.ndarray:
        """Coreness (the largest k such that the vertex is in the k-core)."""
        return self.do("coreness").array
