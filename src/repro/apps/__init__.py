"""Graph application kernels.

The five benchmarks from the paper's Section 6 (BFS, SSSP, PageRank, BC, CC)
plus the SpMV generalisation from Section 9.  Each app:

1. registers its data objects (CSR arrays + per-app property arrays) with a
   registry (the ATMem runtime, or a plain host registry in tests);
2. exposes ``run_once()``, one full benchmark iteration that computes the
   real result with vectorised NumPy *and* emits the memory-access trace the
   simulator charges for.

The kernels are NumPy translations of frontier/sweep-based SIMD graph
kernels; their access pattern — random offset/property gathers driven by the
graph structure, sequential edge scans — is exactly what ATMem profiles.
"""

from repro.apps.base import GraphApp, HostRegistry
from repro.apps.bc import BetweennessCentrality
from repro.apps.bfs import BFS
from repro.apps.bfs_directional import DirectionOptimizedBFS
from repro.apps.cc import ConnectedComponents
from repro.apps.hashjoin import HashJoinProbe
from repro.apps.kcore import KCore
from repro.apps.pagerank import PageRank
from repro.apps.spmv import SpMV
from repro.apps.sssp import SSSP

#: The paper's five applications, in the order of its figures.
APP_CLASSES = {
    "BFS": BFS,
    "SSSP": SSSP,
    "PR": PageRank,
    "BC": BetweennessCentrality,
    "CC": ConnectedComponents,
}

APP_NAMES = tuple(APP_CLASSES)

#: Additional kernels shipped beyond the paper's evaluation set.
EXTRA_APP_CLASSES = {
    "SpMV": SpMV,
    "KCore": KCore,
    "HashJoin": HashJoinProbe,
    "DOBFS": DirectionOptimizedBFS,
}

__all__ = [
    "APP_CLASSES",
    "APP_NAMES",
    "BFS",
    "BetweennessCentrality",
    "ConnectedComponents",
    "DirectionOptimizedBFS",
    "EXTRA_APP_CLASSES",
    "GraphApp",
    "HashJoinProbe",
    "HostRegistry",
    "KCore",
    "PageRank",
    "SSSP",
    "SpMV",
]


def make_app(name: str, graph, **kwargs) -> GraphApp:
    """Instantiate one of the paper's applications by short name."""
    if name not in APP_CLASSES:
        raise ValueError(f"unknown app {name!r}; expected one of {APP_NAMES}")
    return APP_CLASSES[name](graph, **kwargs)
