"""Single-source shortest path (frontier-driven Bellman-Ford).

Each round relaxes every out-edge of the active frontier (the vertices whose
distance improved in the previous round), like the paper's SIMD SSSP.
Requires integer edge weights; unweighted graphs are given uniform random
weights in [1, 16] at construction, matching common benchmark practice.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import GraphApp, expand_frontier
from repro.graph.csr import CSRGraph
from repro.mem.trace import AccessKind, AccessTrace

INF = np.iinfo(np.int64).max // 2


class SSSP(GraphApp):
    """Single-source shortest path over non-negative integer weights."""

    name = "SSSP"

    def __init__(
        self, graph: CSRGraph, source: int = 0, *, weight_seed: int = 11
    ) -> None:
        if graph.weights is None:
            graph = graph.with_weights(np.random.default_rng(weight_seed))
        super().__init__(graph)
        if not 0 <= source < graph.num_vertices:
            raise ValueError(f"source {source} out of range")
        self.source = source

    def property_arrays(self) -> dict[str, np.ndarray]:
        return {"dist": np.full(self.graph.num_vertices, INF, dtype=np.int64)}

    def run_once(self) -> AccessTrace:
        trace = AccessTrace()
        offsets = self.graph.offsets
        adjacency = self.graph.adjacency
        weights = self.graph.weights
        dist = self.do("dist").array
        dist.fill(INF)
        dist[self.source] = 0
        frontier = np.array([self.source], dtype=np.int64)
        # Scratch for the per-round segment-min; reset sparsely (only the
        # slots a round touched) so it allocates once per run.
        best = np.full(dist.size, INF, dtype=np.int64)
        while frontier.size:
            self._gather(trace, "offsets", frontier, "offsets-gather")
            edge_idx = expand_frontier(offsets, frontier)
            if edge_idx.size == 0:
                break
            trace.add(
                self.do("adjacency").addrs_of(edge_idx),
                kind=AccessKind.RANDOM,
                prefetchable=True,
                label="adjacency-read",
            )
            trace.add(
                self.do("weights").addrs_of(edge_idx),
                kind=AccessKind.RANDOM,
                prefetchable=True,
                label="weights-read",
            )
            targets = adjacency[edge_idx]
            counts = offsets[frontier + 1] - offsets[frontier]
            sources = np.repeat(frontier, counts)
            candidate = dist[sources] + weights[edge_idx]
            self._gather(trace, "dist", targets, "dist-read")
            # Segment-min per target: one unordered scatter-min replaces
            # the old argsort+reduceat (the sort dominated trace_gen).
            # `improved` comes out ascending, exactly as the sorted
            # unique-target walk produced it, so traces are identical.
            np.minimum.at(best, targets, candidate)
            improved = np.nonzero(best < dist)[0]
            if improved.size:
                self._scatter(trace, "dist", improved, "dist-write")
                dist[improved] = best[improved]
            best[targets] = INF
            frontier = improved
        return trace

    def result(self) -> np.ndarray:
        """Shortest distance per vertex (INF sentinel = unreachable)."""
        return self.do("dist").array
