"""Sparse matrix-vector multiply (the paper's Section 9 generalisation).

Treats the CSR graph as a sparse matrix A (entries = edge weights, or 1.0
for unweighted graphs) and computes ``y = A @ x`` ``num_reps`` times.  The
pattern — sequential scans of the matrix arrays, random gathers into the
dense vector ``x`` — is what makes the paper claim "similar results as the
graph applications" for sparse computations.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import GraphApp
from repro.graph.csr import CSRGraph
from repro.mem.trace import AccessTrace


class SpMV(GraphApp):
    """Repeated CSR sparse matrix-vector product."""

    name = "SpMV"

    def __init__(self, graph: CSRGraph, *, num_reps: int = 3, seed: int = 13) -> None:
        super().__init__(graph)
        if num_reps <= 0:
            raise ValueError(f"num_reps must be positive, got {num_reps}")
        self.num_reps = num_reps
        self._rng = np.random.default_rng(seed)
        self._edge_src = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64), graph.degrees
        )

    def property_arrays(self) -> dict[str, np.ndarray]:
        v = self.graph.num_vertices
        rng = np.random.default_rng(17)
        values = (
            self.graph.weights.astype(np.float64)
            if self.graph.weights is not None
            else np.ones(self.graph.num_edges, dtype=np.float64)
        )
        return {
            "values": values,
            "x": rng.random(v),
            "y": np.zeros(v, dtype=np.float64),
        }

    def run_once(self) -> AccessTrace:
        trace = AccessTrace()
        adjacency = self.graph.adjacency
        values = self.do("values").array
        x = self.do("x").array
        y = self.do("y").array
        v = self.graph.num_vertices
        for _ in range(self.num_reps):
            self._scan(trace, "offsets", "offsets-scan")
            self._scan(trace, "adjacency", "adjacency-scan")
            self._scan(trace, "values", "values-scan")
            self._gather(trace, "x", adjacency, "x-gather")
            products = values * x[adjacency]
            y[:] = np.bincount(self._edge_src, weights=products, minlength=v)
            self._scan(trace, "y", "y-write", is_write=True)
        return trace

    def result(self) -> np.ndarray:
        """The product vector ``y`` from the last repetition."""
        return self.do("y").array
