"""Connected components (label propagation).

Each round every vertex adopts the minimum label among itself and its
neighbours; the run converges when no label changes.  Sequential adjacency
scans plus random label gathers — similar in shape to PageRank, but with a
data-dependent number of rounds.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import GraphApp
from repro.graph.csr import CSRGraph
from repro.mem.trace import AccessTrace


class ConnectedComponents(GraphApp):
    """Min-label propagation over the symmetrised graph."""

    name = "CC"

    def __init__(self, graph: CSRGraph, *, max_rounds: int = 64) -> None:
        super().__init__(graph)
        if max_rounds <= 0:
            raise ValueError(f"max_rounds must be positive, got {max_rounds}")
        self.max_rounds = max_rounds

    def property_arrays(self) -> dict[str, np.ndarray]:
        return {"labels": np.arange(self.graph.num_vertices, dtype=np.int64)}

    def run_once(self) -> AccessTrace:
        trace = AccessTrace()
        v = self.graph.num_vertices
        adjacency = self.graph.adjacency
        labels = self.do("labels").array
        labels[:] = np.arange(v, dtype=np.int64)
        offsets = self.graph.offsets
        starts = offsets[:-1]
        nonempty = self.graph.degrees > 0
        sentinel = np.iinfo(np.int64).max
        # reduceat over the nonempty vertices' starts only: they are
        # strictly increasing and in range, and each such segment ends
        # exactly at the next nonempty vertex's start.  (Clipping empty
        # trailing starts into range instead would silently truncate the
        # last nonempty vertex's segment.)
        nonempty_starts = starts[nonempty]
        for _ in range(self.max_rounds):
            self._scan(trace, "offsets", "offsets-scan")
            self._scan(trace, "adjacency", "adjacency-scan")
            self._gather(trace, "labels", adjacency, "label-gather")
            neighbor_min = np.full(v, sentinel, dtype=np.int64)
            if adjacency.size:
                neighbor_min[nonempty] = np.minimum.reduceat(
                    labels[adjacency], nonempty_starts
                )
            new_labels = np.minimum(labels, neighbor_min)
            changed = new_labels < labels
            if not changed.any():
                break
            changed_ids = np.nonzero(changed)[0]
            self._scatter(trace, "labels", changed_ids, "label-write")
            labels[changed_ids] = new_labels[changed_ids]
        return trace

    def result(self) -> np.ndarray:
        """Component label per vertex (minimum vertex id in the component)."""
        return self.do("labels").array
