"""PageRank (pull-based power iteration).

One ``run_once`` performs ``num_sweeps`` power-iteration sweeps.  Each sweep
scans the adjacency array sequentially and gathers ``rank``/``degree`` for
every edge endpoint — the random gathers into vertex-indexed arrays are the
skewed accesses ATMem's profiler sees, with miss density proportional to
in-degree per region.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import GraphApp
from repro.graph.csr import CSRGraph
from repro.mem.trace import AccessTrace


class PageRank(GraphApp):
    """Pull-based PageRank over the symmetrised graph."""

    name = "PR"

    def __init__(
        self,
        graph: CSRGraph,
        *,
        damping: float = 0.85,
        num_sweeps: int = 3,
    ) -> None:
        super().__init__(graph)
        if not 0.0 < damping < 1.0:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        if num_sweeps <= 0:
            raise ValueError(f"num_sweeps must be positive, got {num_sweeps}")
        self.damping = damping
        self.num_sweeps = num_sweeps
        # Precomputed source vertex per edge for the segment sum.
        self._edge_src = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64), graph.degrees
        )

    def property_arrays(self) -> dict[str, np.ndarray]:
        v = self.graph.num_vertices
        return {
            "rank": np.full(v, 1.0 / v, dtype=np.float64),
            "rank_next": np.zeros(v, dtype=np.float64),
            "out_degree": self.graph.degrees.astype(np.int64),
        }

    def run_once(self) -> AccessTrace:
        trace = AccessTrace()
        v = self.graph.num_vertices
        adjacency = self.graph.adjacency
        degree = self.do("out_degree").array
        self.do("rank").array.fill(1.0 / v)
        base = (1.0 - self.damping) / v
        safe_degree = np.maximum(degree, 1)
        current, pending = "rank", "rank_next"
        for _ in range(self.num_sweeps):
            rank = self.do(current).array
            rank_next = self.do(pending).array
            self._scan(trace, "offsets", "offsets-scan")
            self._scan(trace, "adjacency", "adjacency-scan")
            self._gather(trace, current, adjacency, "rank-gather")
            self._gather(trace, "out_degree", adjacency, "degree-gather")
            contribution = rank[adjacency] / safe_degree[adjacency]
            sums = np.bincount(self._edge_src, weights=contribution, minlength=v)
            rank_next[:] = base + self.damping * sums
            self._scan(trace, pending, "rank-write", is_write=True)
            current, pending = pending, current
        # Keep the final values in the registered "rank" object.
        if current != "rank":
            self.do("rank").array[:] = self.do(current).array
        return trace

    def result(self) -> np.ndarray:
        """PageRank score per vertex after ``num_sweeps`` sweeps."""
        return self.do("rank").array
