"""Direction-optimising BFS (Beamer-style push/pull switching).

High-performance BFS implementations (including throughput-oriented SIMD
frameworks like the paper's GraphPhi substrate) switch direction per
level: small frontiers *push* (top-down: expand the frontier's adjacency
lists), large frontiers *pull* (bottom-up: every unvisited vertex scans
its neighbour list for a visited parent).  The pull phase turns BFS into
a PageRank-like pattern — sequential scans of the structure plus random
gathers into the ``dist`` array — which shifts where the LLC misses land
and therefore what ATMem selects.  Including it exercises the analyzer
under the access mix the paper's SIMD kernels actually produce.

Results are identical to the plain top-down :class:`repro.apps.bfs.BFS`
(the traversal order differs, levels do not).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import GraphApp, expand_frontier
from repro.graph.csr import CSRGraph
from repro.mem.trace import AccessKind, AccessTrace

UNVISITED = -1


class DirectionOptimizedBFS(GraphApp):
    """Level-synchronous BFS with per-level push/pull direction choice."""

    name = "DOBFS"

    def __init__(
        self,
        graph: CSRGraph,
        source: int = 0,
        *,
        pull_threshold: float = 0.05,
    ) -> None:
        super().__init__(graph)
        if not 0 <= source < graph.num_vertices:
            raise ValueError(f"source {source} out of range")
        if not 0.0 < pull_threshold <= 1.0:
            raise ValueError(
                f"pull_threshold must be in (0, 1], got {pull_threshold}"
            )
        self.source = source
        #: Switch to pull once the frontier's out-edges exceed this
        #: fraction of all edges (the classic alpha heuristic, simplified).
        self.pull_threshold = pull_threshold
        self.direction_log: list[str] = []

    def property_arrays(self) -> dict[str, np.ndarray]:
        return {"dist": np.full(self.graph.num_vertices, UNVISITED, dtype=np.int64)}

    # ------------------------------------------------------------------
    def run_once(self) -> AccessTrace:
        trace = AccessTrace()
        dist = self.do("dist").array
        dist.fill(UNVISITED)
        dist[self.source] = 0
        frontier = np.array([self.source], dtype=np.int64)
        level = 0
        total_edges = max(1, self.graph.num_edges)
        self.direction_log = []
        while frontier.size:
            frontier_edges = int(self.graph.degrees[frontier].sum())
            level += 1
            if frontier_edges / total_edges > self.pull_threshold:
                fresh = self._pull_step(trace, dist, level)
                self.direction_log.append("pull")
            else:
                fresh = self._push_step(trace, dist, frontier, level)
                self.direction_log.append("push")
            frontier = fresh
        return trace

    def _push_step(
        self,
        trace: AccessTrace,
        dist: np.ndarray,
        frontier: np.ndarray,
        level: int,
    ) -> np.ndarray:
        """Top-down: expand the frontier's adjacency lists."""
        offsets = self.graph.offsets
        adjacency = self.graph.adjacency
        self._gather(trace, "offsets", frontier, "offsets-gather")
        edge_idx = expand_frontier(offsets, frontier)
        if edge_idx.size == 0:
            return np.empty(0, dtype=np.int64)
        trace.add(
            self.do("adjacency").addrs_of(edge_idx),
            kind=AccessKind.RANDOM,
            prefetchable=True,
            label="adjacency-push",
        )
        neighbors = adjacency[edge_idx]
        self._gather(trace, "dist", neighbors, "dist-check")
        fresh = np.unique(neighbors[dist[neighbors] == UNVISITED])
        if fresh.size:
            self._scatter(trace, "dist", fresh, "dist-write")
            dist[fresh] = level
        return fresh

    def _pull_step(
        self, trace: AccessTrace, dist: np.ndarray, level: int
    ) -> np.ndarray:
        """Bottom-up: every unvisited vertex scans for a visited parent.

        Vectorised variant: scan the adjacency of all unvisited vertices
        and keep those with at least one neighbour on the previous level.
        """
        offsets = self.graph.offsets
        adjacency = self.graph.adjacency
        unvisited = np.nonzero(dist == UNVISITED)[0]
        if unvisited.size == 0:
            return np.empty(0, dtype=np.int64)
        self._gather(trace, "offsets", unvisited, "offsets-pull")
        edge_idx = expand_frontier(offsets, unvisited)
        if edge_idx.size == 0:
            return np.empty(0, dtype=np.int64)
        trace.add(
            self.do("adjacency").addrs_of(edge_idx),
            kind=AccessKind.RANDOM,
            prefetchable=True,
            label="adjacency-pull",
        )
        neighbors = adjacency[edge_idx]
        self._gather(trace, "dist", neighbors, "dist-pull-check")
        counts = offsets[unvisited + 1] - offsets[unvisited]
        owner = np.repeat(unvisited, counts)
        has_parent = dist[neighbors] == level - 1
        fresh = np.unique(owner[has_parent])
        if fresh.size:
            self._scatter(trace, "dist", fresh, "dist-write")
            dist[fresh] = level
        return fresh

    def result(self) -> np.ndarray:
        """BFS level per vertex (-1 = unreachable)."""
        return self.do("dist").array
