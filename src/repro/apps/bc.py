"""Betweenness centrality (Brandes' algorithm, sampled sources).

For each sampled source: a forward level-synchronous BFS accumulates
shortest-path counts (``sigma``), then a backward sweep over the levels
accumulates dependencies (``delta``).  With unweighted symmetrised graphs
the per-level structure lets both sweeps stay fully vectorised.

Exact BC needs all V sources; like most benchmark suites (and at the scale
of the paper's billion-edge inputs) we sample ``num_sources`` of them.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import GraphApp, expand_frontier
from repro.graph.csr import CSRGraph
from repro.mem.trace import AccessKind, AccessTrace


class BetweennessCentrality(GraphApp):
    """Brandes betweenness centrality from sampled sources."""

    name = "BC"

    def __init__(self, graph: CSRGraph, *, num_sources: int = 2, seed: int = 5) -> None:
        super().__init__(graph)
        if num_sources <= 0:
            raise ValueError(f"num_sources must be positive, got {num_sources}")
        rng = np.random.default_rng(seed)
        # Prefer high-degree sources so traversals cover the graph.
        candidates = np.argsort(graph.degrees)[::-1][: max(num_sources * 4, 8)]
        self.sources = rng.choice(
            candidates, size=min(num_sources, candidates.size), replace=False
        ).astype(np.int64)

    def property_arrays(self) -> dict[str, np.ndarray]:
        v = self.graph.num_vertices
        return {
            "bc": np.zeros(v, dtype=np.float64),
            "sigma": np.zeros(v, dtype=np.float64),
            "delta": np.zeros(v, dtype=np.float64),
            "depth": np.full(v, -1, dtype=np.int64),
        }

    def run_once(self) -> AccessTrace:
        trace = AccessTrace()
        bc = self.do("bc").array
        bc.fill(0.0)
        for source in self.sources:
            self._accumulate_from(trace, int(source))
        return trace

    def _accumulate_from(self, trace: AccessTrace, source: int) -> None:
        offsets = self.graph.offsets
        adjacency = self.graph.adjacency
        sigma = self.do("sigma").array
        delta = self.do("delta").array
        depth = self.do("depth").array
        bc = self.do("bc").array
        v = self.graph.num_vertices

        sigma.fill(0.0)
        delta.fill(0.0)
        depth.fill(-1)
        sigma[source] = 1.0
        depth[source] = 0
        levels: list[np.ndarray] = [np.array([source], dtype=np.int64)]

        # Forward sweep: BFS levels + path counts.
        while True:
            frontier = levels[-1]
            self._gather(trace, "offsets", frontier, "offsets-gather")
            edge_idx = expand_frontier(offsets, frontier)
            if edge_idx.size == 0:
                break
            trace.add(
                self.do("adjacency").addrs_of(edge_idx),
                kind=AccessKind.RANDOM,
                prefetchable=True,
                label="adjacency-read",
            )
            targets = adjacency[edge_idx]
            counts = offsets[frontier + 1] - offsets[frontier]
            sources_rep = np.repeat(frontier, counts)
            self._gather(trace, "depth", targets, "depth-check")
            level = int(depth[frontier[0]]) + 1
            tree_edge = (depth[targets] == -1) | (depth[targets] == level)
            targets = targets[tree_edge]
            sources_rep = sources_rep[tree_edge]
            if targets.size == 0:
                break
            fresh = np.unique(targets[depth[targets] == -1])
            if fresh.size == 0:
                break
            depth[fresh] = level
            # sigma[child] += sigma[parent] over tree edges into this level.
            on_level = depth[targets] == level
            add = np.bincount(
                targets[on_level], weights=sigma[sources_rep[on_level]], minlength=v
            )
            self._gather(trace, "sigma", sources_rep[on_level], "sigma-read")
            touched = np.nonzero(add)[0]
            self._scatter(trace, "sigma", touched, "sigma-write")
            sigma += add
            self._scatter(trace, "depth", fresh, "depth-write")
            levels.append(fresh)

        # Backward sweep: dependency accumulation, deepest level first.
        for frontier in reversed(levels[1:]):
            self._gather(trace, "offsets", frontier, "offsets-gather-back")
            edge_idx = expand_frontier(offsets, frontier)
            if edge_idx.size == 0:
                continue
            targets = adjacency[edge_idx]
            counts = offsets[frontier + 1] - offsets[frontier]
            children = np.repeat(frontier, counts)
            trace.add(
                self.do("adjacency").addrs_of(edge_idx),
                kind=AccessKind.RANDOM,
                prefetchable=True,
                label="adjacency-read-back",
            )
            # Edges child -> parent where parent is one level up.
            level = int(depth[frontier[0]])
            up = depth[targets] == level - 1
            parents, children = targets[up], children[up]
            if parents.size == 0:
                continue
            self._gather(trace, "sigma", parents, "sigma-read-back")
            self._gather(trace, "delta", children, "delta-read")
            contribution = (sigma[parents] / sigma[children]) * (1.0 + delta[children])
            add = np.bincount(parents, weights=contribution, minlength=v)
            touched = np.nonzero(add)[0]
            self._scatter(trace, "delta", touched, "delta-write")
            delta += add
            bc[frontier] += delta[frontier]

    def result(self) -> np.ndarray:
        """Accumulated (unnormalised) dependency score per vertex."""
        return self.do("bc").array
