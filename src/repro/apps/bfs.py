"""Breadth-first search (level-synchronous, top-down).

One ``run_once`` is a full traversal from the source vertex.  The access
pattern per level: random gathers into ``offsets`` for the frontier,
segmented reads of ``adjacency``, random gathers and scatters on the
``dist`` array for the discovered neighbours — the classic frontier-driven
irregular pattern whose hot regions track high-degree vertices.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import GraphApp, expand_frontier
from repro.graph.csr import CSRGraph
from repro.mem.trace import AccessKind, AccessTrace

UNVISITED = -1


class BFS(GraphApp):
    """Single-source breadth-first search."""

    name = "BFS"

    def __init__(self, graph: CSRGraph, source: int = 0) -> None:
        super().__init__(graph)
        if not 0 <= source < graph.num_vertices:
            raise ValueError(f"source {source} out of range")
        self.source = source

    def property_arrays(self) -> dict[str, np.ndarray]:
        return {"dist": np.full(self.graph.num_vertices, UNVISITED, dtype=np.int64)}

    def run_once(self) -> AccessTrace:
        trace = AccessTrace()
        offsets = self.graph.offsets
        adjacency = self.graph.adjacency
        dist = self.do("dist").array
        dist.fill(UNVISITED)
        dist[self.source] = 0
        frontier = np.array([self.source], dtype=np.int64)
        level = 0
        while frontier.size:
            self._gather(trace, "offsets", frontier, "offsets-gather")
            edge_idx = expand_frontier(offsets, frontier)
            if edge_idx.size == 0:
                break
            trace.add(
                self.do("adjacency").addrs_of(edge_idx),
                kind=AccessKind.RANDOM,
                prefetchable=True,
                label="adjacency-read",
            )
            neighbors = adjacency[edge_idx]
            self._gather(trace, "dist", neighbors, "dist-check")
            fresh = np.unique(neighbors[dist[neighbors] == UNVISITED])
            level += 1
            if fresh.size:
                self._scatter(trace, "dist", fresh, "dist-write")
                dist[fresh] = level
            frontier = fresh
        return trace

    def result(self) -> np.ndarray:
        """BFS level per vertex (-1 = unreachable)."""
        return self.do("dist").array
