"""Application base class and registry protocol.

A *registry* is anything that can place a host array at a virtual address
and hand back a :class:`repro.core.dataobject.DataObject`.  The ATMem
runtime is the real registry (it also maps the range in the simulated memory
system); :class:`HostRegistry` is a minimal stand-in for correctness tests
that don't involve placement.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Protocol

import numpy as np

from repro.core.dataobject import DataObject
from repro.errors import RuntimeStateError
from repro.graph.csr import CSRGraph
from repro.mem.trace import AccessKind, AccessTrace


class ArrayRegistry(Protocol):
    """Anything that can register host arrays at virtual addresses."""

    def register_array(self, name: str, array: np.ndarray) -> DataObject: ...


class HostRegistry:
    """Registry without a memory system: assigns fake, non-overlapping VAs."""

    PAGE = 4096

    def __init__(self) -> None:
        self._bump = 0x10000000
        self.objects: dict[str, DataObject] = {}

    def register_array(self, name: str, array: np.ndarray) -> DataObject:
        if name in self.objects:
            raise RuntimeStateError(f"data object {name!r} already registered")
        va = self._bump
        n_pages = -(-array.nbytes // self.PAGE)
        self._bump += max(1, n_pages) * self.PAGE
        obj = DataObject(name=name, array=array, base_va=va)
        self.objects[name] = obj
        return obj


def expand_frontier(offsets: np.ndarray, frontier: np.ndarray) -> np.ndarray:
    """Adjacency-array positions of all out-edges of the frontier vertices.

    Returns the concatenated index ranges
    ``[offsets[v], offsets[v+1]) for v in frontier`` as one int64 array —
    the standard vectorised CSR frontier expansion.
    """
    starts = offsets[frontier]
    counts = offsets[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # For each output slot, the start of its segment minus the number of
    # slots already emitted before the segment, plus the running position.
    shift = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
    return shift + np.arange(total, dtype=np.int64)


class GraphApp(ABC):
    """A graph benchmark that computes for real and emits an access trace."""

    #: Short name used in figures (subclasses override).
    name: str = "app"

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph
        self.objects: dict[str, DataObject] = {}
        self._registered = False

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, registry: ArrayRegistry) -> None:
        """Register the CSR arrays plus the app's own property arrays."""
        if self._registered:
            raise RuntimeStateError(f"{self.name}: already registered")
        self.objects["offsets"] = registry.register_array("offsets", self.graph.offsets)
        self.objects["adjacency"] = registry.register_array(
            "adjacency", self.graph.adjacency
        )
        if self.graph.weights is not None:
            self.objects["weights"] = registry.register_array(
                "weights", self.graph.weights
            )
        for name, array in self.property_arrays().items():
            self.objects[name] = registry.register_array(name, array)
        self._registered = True

    @abstractmethod
    def property_arrays(self) -> dict[str, np.ndarray]:
        """The app's own data objects (distance, rank, ... arrays)."""

    def do(self, name: str) -> DataObject:
        """Look up a registered data object by name."""
        if not self._registered:
            raise RuntimeStateError(f"{self.name}: register() must run first")
        return self.objects[name]

    @property
    def total_bytes(self) -> int:
        """Total registered data size (denominator of the paper's data ratio)."""
        return sum(obj.nbytes for obj in self.objects.values())

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @abstractmethod
    def run_once(self) -> AccessTrace:
        """One benchmark iteration: recompute results and emit the trace.

        Must be idempotent — the experiment flow runs it once for profiling
        and again for measurement, and both runs must do identical work.

        Emit through phase-granular ``trace.add`` calls (the ``_gather``
        / ``_scatter`` / ``_scan`` helpers do) rather than one giant
        concatenated array: downstream consumers stream the trace in
        bounded program-order chunks (:meth:`repro.mem.trace.AccessTrace.
        iter_chunks` — checksums, reuse folds, and store writes all avoid
        materialising a flat copy of an over-``REPRO_WORKER_BYTES``
        trace), and a chunk never spans a phase boundary, so per-phase
        emission is what keeps individual chunks bounded too.
        """

    @abstractmethod
    def result(self) -> np.ndarray:
        """The values computed by the last ``run_once`` (for verification)."""

    # ------------------------------------------------------------------
    # shared trace-emission helpers
    # ------------------------------------------------------------------
    def _gather(self, trace: AccessTrace, obj_name: str, idx: np.ndarray, label: str) -> None:
        trace.add(self.do(obj_name).addrs_of(idx), kind=AccessKind.RANDOM, label=label)

    def _scatter(self, trace: AccessTrace, obj_name: str, idx: np.ndarray, label: str) -> None:
        trace.add(
            self.do(obj_name).addrs_of(idx),
            is_write=True,
            kind=AccessKind.RANDOM,
            label=label,
        )

    def _scan(
        self, trace: AccessTrace, obj_name: str, label: str, *, is_write: bool = False
    ) -> None:
        trace.add(
            self.do(obj_name).all_addrs(),
            is_write=is_write,
            kind=AccessKind.SEQUENTIAL,
            label=label,
        )
