"""Hash-join probe kernel (a non-graph irregular workload).

The paper's Section 9 argues ATMem "also works well for other irregular
applications"; a database hash join is the canonical one.  The kernel:

- **build**: insert the build relation's keys into an open-addressing
  (linear-probing) hash table;
- **probe**: stream the (much larger) probe relation, hash each key, and
  walk the table until a match or an empty slot.

The probe side streams sequentially while the hash-table accesses are
random and *skewed when the probe keys are* — a Zipf key distribution
concentrates the table traffic on the buckets of popular keys, giving
ATMem a dense region to place.  The table is the placement target; the
relations are streams.

One ``run_once`` is one full probe pass (the build runs during
registration — its table is part of the registered state).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import ArrayRegistry, GraphApp
from repro.errors import ConfigurationError
from repro.mem.trace import AccessKind, AccessTrace

EMPTY = -1


class HashJoinProbe(GraphApp):
    """Linear-probing hash-join probe over synthetic relations.

    Not graph-based: ignores the CSR protocol's graph argument by
    synthesising its own relations.  Registered data objects:

    - ``table_keys`` / ``table_values`` — the open-addressing hash table
      built from the build relation (the placement target);
    - ``probe_keys`` — the probe relation (streamed);
    - ``output`` — matched values (streamed).
    """

    name = "HashJoin"

    def __init__(
        self,
        *,
        build_rows: int = 1 << 15,
        probe_rows: int = 1 << 18,
        zipf_exponent: float = 1.2,
        load_factor: float = 0.5,
        seed: int = 31,
    ) -> None:
        if build_rows <= 0 or probe_rows <= 0:
            raise ConfigurationError("relation sizes must be positive")
        if not 0.0 < load_factor < 0.95:
            raise ConfigurationError(
                f"load_factor must be in (0, 0.95), got {load_factor}"
            )
        # GraphApp wants a graph; this kernel has none.
        self.graph = None  # type: ignore[assignment]
        self.objects = {}
        self._registered = False
        self.build_rows = build_rows
        self.probe_rows = probe_rows
        self.zipf_exponent = zipf_exponent
        rng = np.random.default_rng(seed)
        table_slots = 1 << int(np.ceil(np.log2(build_rows / load_factor)))
        self.table_slots = table_slots
        self._build_keys = rng.permutation(build_rows * 4)[:build_rows].astype(
            np.int64
        )
        # Zipf-ranked probe keys over the build keys: popular keys probed
        # far more often (skewed bucket traffic).
        ranks = (rng.zipf(zipf_exponent, size=probe_rows) - 1) % build_rows
        self._probe_keys = self._build_keys[ranks]

    # ------------------------------------------------------------------
    def register(self, registry: ArrayRegistry) -> None:
        if self._registered:
            raise ConfigurationError(f"{self.name}: already registered")
        keys = np.full(self.table_slots, EMPTY, dtype=np.int64)
        values = np.zeros(self.table_slots, dtype=np.int64)
        self._build_table(keys, values)
        self.objects["table_keys"] = registry.register_array("table_keys", keys)
        self.objects["table_values"] = registry.register_array("table_values", values)
        self.objects["probe_keys"] = registry.register_array(
            "probe_keys", self._probe_keys
        )
        self.objects["output"] = registry.register_array(
            "output", np.zeros(self.probe_rows, dtype=np.int64)
        )
        self._registered = True

    def property_arrays(self) -> dict[str, np.ndarray]:  # pragma: no cover
        raise NotImplementedError("HashJoinProbe registers its own objects")

    def _hash(self, keys: np.ndarray) -> np.ndarray:
        # Fibonacci hashing in uint64 (wrapping) arithmetic.
        mixed = np.asarray(keys).astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        return ((mixed >> np.uint64(16)) & np.uint64(self.table_slots - 1)).astype(
            np.int64
        )

    def _build_table(self, keys: np.ndarray, values: np.ndarray) -> None:
        for key in self._build_keys:
            slot = int(self._hash(np.array([key]))[0])
            while keys[slot] != EMPTY:
                slot = (slot + 1) & (self.table_slots - 1)
            keys[slot] = key
            values[slot] = key * 2 + 1  # any deterministic payload

    # ------------------------------------------------------------------
    def run_once(self) -> AccessTrace:
        trace = AccessTrace()
        table_keys = self.do("table_keys").array
        table_values = self.do("table_values").array
        probe_keys = self.do("probe_keys").array
        output = self.do("output").array
        self._scan(trace, "probe_keys", "probe-stream")
        slots = self._hash(probe_keys)
        result = np.full(self.probe_rows, EMPTY, dtype=np.int64)
        pending = np.arange(self.probe_rows, dtype=np.int64)
        # Batched linear probing: all rows advance one slot per round.
        while pending.size:
            cur = slots[pending]
            self._gather(trace, "table_keys", cur, "table-probe")
            found = table_keys[cur] == probe_keys[pending]
            empty = table_keys[cur] == EMPTY
            hit_rows = pending[found]
            if hit_rows.size:
                self._gather(trace, "table_values", slots[hit_rows], "value-fetch")
                result[hit_rows] = table_values[slots[hit_rows]]
            keep = ~(found | empty)
            pending = pending[keep]
            slots[pending] = (slots[pending] + 1) & (self.table_slots - 1)
        output[:] = result
        self._scan(trace, "output", "output-stream", is_write=True)
        return trace

    def result(self) -> np.ndarray:
        """Joined payload per probe row (EMPTY where no match)."""
        return self.do("output").array

    def expected_output(self) -> np.ndarray:
        """Ground truth from a plain dictionary join."""
        mapping = {int(k): int(k) * 2 + 1 for k in self._build_keys}
        return np.array(
            [mapping.get(int(k), EMPTY) for k in self._probe_keys], dtype=np.int64
        )
