"""Sweep every ATMem knob on one workload with the generic sweep driver.

The paper sweeps only epsilon (Figures 9/10); this study also sweeps the
tree arity, the chunk-count cap, and the sampling budget, printing one
compact table per knob.  Useful for tuning the framework on a new
platform or workload.

Run with:  python examples/sensitivity_study.py [app] [dataset]
"""

import sys

from repro import dataset_by_name, make_app, nvm_dram_testbed, run_static
from repro.sim.sweep import (
    arity_configurator,
    chunk_cap_configurator,
    epsilon_configurator,
    run_sweep,
    sampling_budget_configurator,
)

KNOBS = [
    ("epsilon (Eq. 5)", [0.05, 0.15, 0.25, 0.5, 0.8], epsilon_configurator),
    ("tree arity m", [2, 4, 8, 16], arity_configurator),
    ("max chunks", [32, 128, 1024], chunk_cap_configurator),
    ("samples/chunk", [0.5, 2.0, 8.0, 32.0], sampling_budget_configurator),
]


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "BFS"
    dataset = sys.argv[2] if len(sys.argv) > 2 else "twitter"
    graph = dataset_by_name(dataset, scale=2048)
    platform = nvm_dram_testbed(scale=2048)
    factory = lambda: make_app(app_name, graph)
    baseline = run_static(factory, platform, "slow")
    print(f"{app_name} on {dataset}: baseline {baseline.seconds * 1e3:.2f} ms "
          f"(all data on {platform.tiers[platform.slow_tier].name})\n")

    for label, values, configurator in KNOBS:
        points = run_sweep(factory, platform, values, configurator())
        print(f"--- {label} ---")
        print(f"{'value':>10s} {'time_ms':>9s} {'speedup':>8s} {'ratio':>7s}")
        for p in points:
            print(f"{p.value:10.2f} {p.seconds * 1e3:9.3f} "
                  f"{baseline.seconds / p.seconds:7.2f}x {p.data_ratio:6.1%}")
        print()

    print("Reading the tables: wide plateaus everywhere are the point — the "
          "two-stage analyzer\nself-adapts, so none of the knobs needs "
          "per-workload tuning (the paper's 'adaptive' claim).")


if __name__ == "__main__":
    main()
