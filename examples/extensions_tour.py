"""Tour of the Section 9 extensions on one workload.

The paper's discussion section sketches three future-work directions; this
repository implements all three plus system telemetry.  The tour runs
PageRank over rmat27 and demonstrates, in order:

1. memory telemetry — per-tier traffic and bandwidth utilisation;
2. crash consistency — the durability tax of NVM-resident writes and how
   migration sheds it;
3. overlapped migration — hiding the copies under a running iteration;
4. bandwidth aggregation — on KNL-style independent channels, leaving the
   bandwidth-proportional traffic share on DRAM.

Run with:  python examples/extensions_tour.py
"""

from repro import dataset_by_name, make_app, mcdram_dram_testbed, nvm_dram_testbed
from repro.core.bandwidth_split import optimal_fast_share, projected_fast_share
from repro.core.consistency import ConsistencyModel, run_with_consistency
from repro.core.overlap import OverlapModel
from repro.core.runtime import AtMemRuntime
from repro.mem.telemetry import TelemetryCollector
from repro.sim.executor import TraceExecutor


def main() -> None:
    graph = dataset_by_name("rmat27", scale=2048)
    platform = nvm_dram_testbed(scale=2048)
    system = platform.build_system()
    runtime = AtMemRuntime(system, platform=platform)
    app = make_app("PR", graph, num_sweeps=2)
    app.register(runtime)
    telemetry = TelemetryCollector(system)
    executor = TraceExecutor(system, telemetry=telemetry)

    # --- baseline iteration with profiling + telemetry -----------------
    runtime.atmem_profiling_start()
    trace = app.run_once()
    baseline = executor.run(trace, miss_observer=runtime)
    runtime.atmem_profiling_stop()
    print("1) telemetry — baseline iteration (everything on NVM):")
    print(telemetry.report(baseline.seconds))

    # --- consistency tax before/after migration -------------------------
    model = ConsistencyModel()
    _, tax_before = run_with_consistency(model, system, trace, baseline.seconds)
    decision, migration = runtime.atmem_optimize()
    telemetry.reset()
    trace2 = app.run_once()
    optimized = executor.run(trace2)
    _, tax_after = run_with_consistency(model, system, trace2, optimized.seconds)
    print("\n2) crash-consistency tax (durable NVM stores):")
    print(f"   before migration: {tax_before * 1e6:8.1f} us per iteration")
    print(f"   after  migration: {tax_after * 1e6:8.1f} us per iteration "
          f"(write-hot data now on DRAM)")

    print("\n   telemetry — optimized iteration:")
    print("   " + telemetry.report(optimized.seconds).replace("\n", "\n   "))

    # --- overlapped migration ------------------------------------------
    overlap = OverlapModel(contention=0.15)
    visible = overlap.visible_overhead_seconds(baseline, migration)
    print("\n3) overlapped migration:")
    print(f"   stop-the-world cost: {migration.seconds * 1e6:8.1f} us")
    print(f"   overlapped cost:     {visible * 1e6:8.1f} us "
          f"(hidden under a {baseline.seconds * 1e3:.2f} ms iteration)")

    # --- bandwidth aggregation on KNL -----------------------------------
    knl = mcdram_dram_testbed(scale=2048)
    knl_system = knl.build_system()
    knl_runtime = AtMemRuntime(knl_system, platform=knl)
    knl_app = make_app("PR", graph, num_sweeps=2)
    knl_app.register(knl_runtime)
    knl_exec = TraceExecutor(knl_system)
    knl_runtime.atmem_profiling_start()
    knl_exec.run(knl_app.run_once(), miss_observer=knl_runtime)
    knl_runtime.atmem_profiling_stop()
    knl_decision, _ = knl_runtime.atmem_optimize()
    share = projected_fast_share(knl_decision)
    target = optimal_fast_share(knl_system.fast, knl_system.slow)
    print("\n4) bandwidth aggregation (KNL independent channels):")
    print(f"   projected MCDRAM traffic share: {share:.1%}")
    print(f"   bandwidth-proportional target:  {target:.1%} "
          f"(400 vs 90 GB/s)")
    print("   -> chunks beyond the target can stay on DDR4 at no cost; "
          "see benchmarks/bench_extensions.py")


if __name__ == "__main__":
    main()
