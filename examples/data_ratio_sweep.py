"""Reproduce a Figure 9-style data-ratio sensitivity curve.

Sweeps the epsilon parameter of the analyzer's Equation 5, which controls
how aggressively the m-ary tree promotes prospective chunks, and plots
(as text) the resulting data ratio vs BFS execution time on the NVM-DRAM
testbed.  The knee of the curve is the "optimal region" of Section 7.2;
ATMem's default lands inside it.

Run with:  python examples/data_ratio_sweep.py [dataset]
"""

import sys

from repro import (
    AnalyzerConfig,
    RuntimeConfig,
    dataset_by_name,
    make_app,
    nvm_dram_testbed,
    run_atmem,
    run_static,
)

EPSILONS = (0.02, 0.05, 0.10, 0.18, 0.25, 0.35, 0.5, 0.7, 0.9)


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "twitter"
    graph = dataset_by_name(dataset, scale=2048)
    platform = nvm_dram_testbed(scale=2048)
    factory = lambda: make_app("BFS", graph)

    baseline = run_static(factory, platform, "slow")
    ideal = run_static(factory, platform, "fast")
    print(f"BFS on {dataset}: baseline {baseline.seconds * 1e3:.2f} ms, "
          f"all-DRAM {ideal.seconds * 1e3:.2f} ms\n")

    points = [(0.0, baseline.seconds)]
    for eps in EPSILONS:
        config = RuntimeConfig(analyzer=AnalyzerConfig(epsilon=eps))
        result = run_atmem(factory, platform, runtime_config=config)
        points.append((result.data_ratio, result.seconds))
    points.append((1.0, ideal.seconds))
    points.sort()

    # Default configuration, for reference.
    default = run_atmem(factory, platform)

    width = 52
    t_max = max(t for _, t in points)
    print(f"{'data ratio':>10s}  {'time':>9s}  curve")
    for ratio, seconds in points:
        bar = "#" * max(1, int(width * seconds / t_max))
        print(f"{ratio:10.3f}  {seconds * 1e3:7.2f}ms  {bar}")
    print(f"\nATMem default chose ratio {default.data_ratio:.3f} at "
          f"{default.seconds * 1e3:.2f} ms — inside the optimal region: "
          "beyond it, extra data buys almost nothing (Section 7.2).")


if __name__ == "__main__":
    main()
