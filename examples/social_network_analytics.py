"""Social-network analytics pipeline on a capacity-limited fast memory.

The scenario motivating the paper's introduction: a server whose fast
memory (here: MCDRAM-style, 16 GB scaled) is smaller than the social graph,
running a multi-kernel analytics pipeline — community sizes (CC),
influencer ranking (PR), and reachability (BFS) — over the same graph.

Compares four placements per kernel:

- everything on the big slow memory (baseline),
- ``numactl -p`` (preferred) — fill fast memory first-come-first-served,
- coarse-grained whole-object placement (Tahoe-style state of the art),
- ATMem's adaptive chunk placement.

Run with:  python examples/social_network_analytics.py
"""

from repro import (
    dataset_by_name,
    make_app,
    mcdram_dram_testbed,
    run_atmem,
    run_coarse_grained,
    run_static,
)

KERNELS = {
    "community detection (CC)": ("CC", {}),
    "influencer ranking (PR)": ("PR", {"num_sweeps": 3}),
    "reachability (BFS)": ("BFS", {}),
}


def main() -> None:
    graph = dataset_by_name("twitter", scale=2048)
    platform = mcdram_dram_testbed(scale=2048)
    fast = platform.tiers[platform.fast_tier]
    print(f"graph: {graph.name}, {graph.num_vertices:,} vertices, "
          f"{graph.num_edges:,} edges")
    print(f"fast memory: {fast.name}, "
          f"{fast.capacity_bytes / 2**20:.1f} MiB capacity\n")

    header = (f"{'kernel':28s} {'baseline':>9s} {'numactl-p':>10s} "
              f"{'coarse':>9s} {'ATMem':>9s} {'ATMem ratio':>12s}")
    print(header)
    print("-" * len(header))
    for label, (app_name, kwargs) in KERNELS.items():
        factory = lambda: make_app(app_name, graph, **kwargs)
        baseline = run_static(factory, platform, "slow")
        preferred = run_static(factory, platform, "preferred")
        coarse = run_coarse_grained(factory, platform)
        atmem = run_atmem(factory, platform)
        print(f"{label:28s} {baseline.seconds * 1e3:7.2f}ms "
              f"{preferred.seconds * 1e3:8.2f}ms "
              f"{coarse.seconds * 1e3:7.2f}ms "
              f"{atmem.seconds * 1e3:7.2f}ms "
              f"{atmem.data_ratio:11.1%}")

    print("\nATMem reaches (or beats) the alternatives while committing a "
          "fraction of the fast memory,\nleaving headroom for the other "
          "kernels and co-located services — the paper's Objective I.")


if __name__ == "__main__":
    main()
