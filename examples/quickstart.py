"""Quickstart: ATMem on PageRank over a social-network graph.

Runs the paper's core experiment end to end on the simulated Optane
NVM + DRAM testbed:

1. place everything on NVM (the baseline) and measure;
2. let ATMem profile one iteration, analyze, and migrate the critical
   chunks to DRAM;
3. measure the optimized iteration and compare against the all-DRAM ideal.

Run with:  python examples/quickstart.py
"""

from repro import dataset_by_name, make_app, nvm_dram_testbed, run_atmem, run_static


def main() -> None:
    graph = dataset_by_name("friendster", scale=2048)
    print(f"graph: {graph.name}, {graph.num_vertices:,} vertices, "
          f"{graph.num_edges:,} edges")

    platform = nvm_dram_testbed(scale=2048)
    factory = lambda: make_app("PR", graph, num_sweeps=2)

    baseline = run_static(factory, platform, "slow")
    ideal = run_static(factory, platform, "fast")
    atmem = run_atmem(factory, platform)

    print(f"\nall data on NVM (baseline): {baseline.seconds * 1e3:8.2f} ms")
    print(f"all data on DRAM (ideal):   {ideal.seconds * 1e3:8.2f} ms")
    print(f"ATMem placement:            {atmem.seconds * 1e3:8.2f} ms")
    print(f"\nATMem placed {atmem.data_ratio:.1%} of the data on DRAM and "
          f"achieved a {baseline.seconds / atmem.seconds:.2f}x speedup, "
          f"{atmem.seconds / ideal.seconds:.2f}x from the ideal.")

    print("\nper-object selection:")
    decision = atmem.decision
    for name, sel in decision.objects.items():
        regions = decision.regions(name)
        print(f"  {name:12s}: {int(sel.selected.sum()):4d}/{sel.selected.size:4d} "
              f"chunks selected ({int(sel.estimated.sum())} promoted by the "
              f"m-ary tree), {len(regions)} region(s)")

    migration = atmem.migration
    print(f"\nmigration: {migration.bytes_moved / 2**20:.2f} MiB in "
          f"{migration.regions} regions, {migration.seconds * 1e6:.0f} us "
          f"(multi-stage multi-threaded)")
    print(f"profiling overhead: "
          f"{atmem.profiling_overhead_seconds / atmem.first_iteration.seconds:.1%} "
          f"of the first iteration")


if __name__ == "__main__":
    main()
