"""Compare ATMem's multi-stage multi-threaded migration with mbind.

Reproduces the paper's Section 7.3 / Table 4 experiment interactively:
runs PageRank with the same analyzer decision but two different migration
mechanisms, reporting migration time and post-migration TLB misses on both
simulated testbeds.

Run with:  python examples/migration_mechanisms.py
"""

from repro import (
    RuntimeConfig,
    dataset_by_name,
    make_app,
    mcdram_dram_testbed,
    nvm_dram_testbed,
    run_atmem,
)


def main() -> None:
    graph = dataset_by_name("rmat27", scale=2048)
    print(f"graph: {graph.name}, {graph.num_vertices:,} vertices, "
          f"{graph.num_edges:,} edges\n")

    for platform in (nvm_dram_testbed(2048), mcdram_dram_testbed(2048)):
        factory = lambda: make_app("PR", graph, num_sweeps=2)
        atmem = run_atmem(factory, platform, count_tlb=True)
        mbind = run_atmem(
            factory,
            platform,
            runtime_config=RuntimeConfig(migration_mechanism="mbind"),
            count_tlb=True,
        )
        print(f"=== {platform.name} "
              f"({platform.tiers[platform.slow_tier].name} -> "
              f"{platform.tiers[platform.fast_tier].name}) ===")
        print(f"  bytes migrated:      {atmem.migration.bytes_moved / 2**20:.2f} MiB "
              f"in {atmem.migration.regions} regions")
        print(f"  migration time:      mbind {mbind.migration.seconds * 1e6:9.1f} us | "
              f"ATMem {atmem.migration.seconds * 1e6:9.1f} us | "
              f"{mbind.migration.seconds / atmem.migration.seconds:5.2f}x faster")
        print(f"  TLB misses (iter 2): mbind {mbind.second_iteration.tlb_misses:9d} | "
              f"ATMem {atmem.second_iteration.tlb_misses:9d} | "
              f"{mbind.second_iteration.tlb_misses / max(1, atmem.second_iteration.tlb_misses):5.2f}x fewer")
        print(f"  iteration-2 time:    mbind {mbind.seconds * 1e3:8.2f} ms | "
              f"ATMem {atmem.seconds * 1e3:8.2f} ms")
        print()

    print("Why: mbind moves pages one at a time on a single thread and splits\n"
          "transparent huge pages (so the migrated range is 4 KiB-mapped\n"
          "afterwards); ATMem copies with many threads through a staging\n"
          "buffer and remaps onto fresh huge pages (paper Figure 4).")


if __name__ == "__main__":
    main()
