"""SpMV on heterogeneous memory: the paper's Section 9 generalisation.

Sparse matrix-vector multiplication is the kernel of iterative solvers
(CG, GMRES, power iteration).  Its access pattern — streamed matrix
arrays plus random gathers into the dense vector — is exactly the pattern
ATMem profiles in graph kernels, so the same partial placement works:
the dense vector's hot regions go to fast memory while the (much larger,
bandwidth-friendly) matrix stays on the big tier.

Also demonstrates registering custom data with the Listing 1 runtime API
directly, without the GraphApp helper layer.

Run with:  python examples/spmv_scientific.py
"""

import numpy as np

from repro import dataset_by_name, make_app, nvm_dram_testbed, run_atmem, run_static
from repro.apps import SpMV
from repro.core.runtime import AtMemRuntime
from repro.sim.executor import TraceExecutor


def solver_style_run() -> None:
    """ATMem under a repeated-SpMV (solver-like) workload."""
    graph = dataset_by_name("rmat27", scale=2048)
    platform = nvm_dram_testbed(scale=2048)
    factory = lambda: SpMV(graph, num_reps=3)

    baseline = run_static(factory, platform, "slow")
    ideal = run_static(factory, platform, "fast")
    atmem = run_atmem(factory, platform)
    print("repeated SpMV (3 products per iteration), rmat27-scale matrix:")
    print(f"  all-NVM baseline: {baseline.seconds * 1e3:8.2f} ms")
    print(f"  all-DRAM ideal:   {ideal.seconds * 1e3:8.2f} ms")
    print(f"  ATMem:            {atmem.seconds * 1e3:8.2f} ms "
          f"({baseline.seconds / atmem.seconds:.2f}x, "
          f"{atmem.data_ratio:.1%} of data on DRAM)")


def listing1_api_demo() -> None:
    """The paper's Listing 1 API, called explicitly."""
    platform = nvm_dram_testbed(scale=2048)
    system = platform.build_system()
    rt = AtMemRuntime(system, platform=platform)

    # atmem_malloc: register a data object (placed on the slow tier).
    table = rt.atmem_malloc("hash_table", 1 << 20, dtype=np.int64)
    rng = np.random.default_rng(1)
    # A skewed access pattern: 90% of probes hit 10% of the table.
    hot = rng.integers(0, 1 << 17, size=900_000)
    cold = rng.integers(0, 1 << 20, size=100_000)
    probes = np.concatenate([hot, cold])
    rng.shuffle(probes)

    from repro.mem.trace import AccessTrace

    executor = TraceExecutor(system)
    trace = AccessTrace()
    trace.add(table.addrs_of(probes), label="probes")

    rt.atmem_profiling_start()
    before = executor.run(trace, miss_observer=rt)
    rt.atmem_profiling_stop()
    decision, migration = rt.atmem_optimize()
    after = executor.run(trace)

    print("\nListing 1 API on a custom data structure (skewed hash table):")
    print(f"  before optimization: {before.seconds * 1e3:6.2f} ms")
    print(f"  after optimization:  {after.seconds * 1e3:6.2f} ms")
    print(f"  selected {decision.data_ratio:.1%} of the table "
          f"({migration.bytes_moved / 2**20:.2f} MiB migrated)")


def main() -> None:
    solver_style_run()
    listing1_api_demo()


if __name__ == "__main__":
    main()
