"""Inspect an application's memory behaviour before placing anything.

Uses the trace-diagnostics tooling to answer, in numbers, "why does ATMem
select what it selects?": per-object access density, read/write mix, and
random-vs-sequential mix for each of the paper's kernels — then shows
the selection ATMem actually makes.

Run with:  python examples/trace_diagnostics.py [app] [dataset]
"""

import sys

from repro import dataset_by_name, make_app, nvm_dram_testbed
from repro.core.runtime import AtMemRuntime
from repro.sim.executor import TraceExecutor
from repro.sim.tracetools import analyze_trace, format_trace_report


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "PR"
    dataset = sys.argv[2] if len(sys.argv) > 2 else "twitter"
    graph = dataset_by_name(dataset, scale=2048)
    platform = nvm_dram_testbed(scale=2048)
    system = platform.build_system()
    runtime = AtMemRuntime(system, platform=platform)
    app = make_app(app_name, graph)
    app.register(runtime)

    print(f"{app_name} on {dataset}: {graph.num_vertices:,} vertices, "
          f"{graph.num_edges:,} edges\n")

    runtime.atmem_profiling_start()
    executor = TraceExecutor(system)
    trace = app.run_once()
    executor.run(trace, miss_observer=runtime)
    runtime.atmem_profiling_stop()

    print("access-trace statistics (one iteration):")
    print(format_trace_report(analyze_trace(trace, app.objects)))

    decision, migration = runtime.atmem_optimize()
    print("\nATMem's selection from the sampled profile:")
    for name, sel in decision.objects.items():
        n_sel = int(sel.selected.sum())
        n_est = int(sel.estimated.sum())
        print(f"  {name:14s}: {n_sel:4d}/{sel.selected.size:4d} chunks "
              f"({n_est} tree-promoted), TR threshold "
              f"{sel.tr_threshold if sel.tr_threshold != float('inf') else 'inf'}")
    print(f"\ndata ratio: {decision.data_ratio:.1%}; "
          f"{migration.bytes_moved / 2**20:.2f} MiB migrated in "
          f"{migration.regions} regions")
    print("\nReading the table: high acc/B + high random% objects are the "
          "ones worth fast memory;\nsequential scans (adjacency) are "
          "prefetch-friendly and cheap to leave on the big tier.")


if __name__ == "__main__":
    main()
