"""Shared-server scenario: three analytics tenants, one fast tier.

The paper's introduction motivates per-byte-efficient placement with
exactly this: on a server, every application competes for the same small
high-performance memory.  This example admits three graph workloads onto
one simulated host whose fast tier holds only a fraction of their
combined data, and shows that chunk-granular placement serves all three.

Run with:  python examples/multi_tenant_server.py
"""

from repro import dataset_by_name, make_app
from repro.config import mcdram_dram_testbed
from repro.sim.multitenant import MultiTenantHost

TENANTS = [
    ("rank-service", "PR", "rmat24"),
    ("path-service", "BFS", "twitter"),
    ("community-service", "CC", "friendster"),
]


def main() -> None:
    # A deliberately tight fast tier (~4 MiB) under ~30 MiB of tenant data.
    platform = mcdram_dram_testbed(scale=4096)
    fast = platform.tiers[platform.fast_tier]
    host = MultiTenantHost(platform)
    total_data = 0
    for name, app_name, ds in TENANTS:
        graph = dataset_by_name(ds, scale=2048)
        app = host.admit(name, lambda a=app_name, g=graph: make_app(a, g))
        total_data += app.total_bytes
        print(f"admitted {name:18s} ({app_name} on {ds}: "
              f"{app.total_bytes / 2**20:.1f} MiB)")
    print(f"\nfast tier: {fast.capacity_bytes / 2**20:.1f} MiB "
          f"({fast.name}); total tenant data: {total_data / 2**20:.1f} MiB\n")

    results = host.run()
    header = (f"{'tenant':18s} {'baseline':>9s} {'optimized':>10s} "
              f"{'speedup':>8s} {'fast KiB':>9s} {'ratio':>7s}")
    print(header)
    print("-" * len(header))
    for name, r in results.items():
        print(f"{name:18s} {r.baseline.seconds * 1e3:7.2f}ms "
              f"{r.optimized.seconds * 1e3:8.2f}ms "
              f"{r.speedup:7.2f}x {r.fast_bytes / 1024:9.0f} "
              f"{r.data_ratio:6.1%}")
    used = host.fast_tier_used_bytes()
    print(f"\nfast tier used: {used / 2**20:.2f} MiB of "
          f"{fast.capacity_bytes / 2**20:.1f} MiB — every tenant served, "
          "capacity to spare (the paper's Objective I).")


if __name__ == "__main__":
    main()
