"""Define a custom heterogeneous memory platform.

ATMem is not tied to the two testbeds of the paper: any pair of memory
tiers works.  This example models a forward-looking CXL-attached memory
expander (higher latency, decent bandwidth, large capacity) under a small
local DRAM pool, and checks how each of the paper's applications behaves
on it.

Run with:  python examples/custom_platform.py
"""

from repro import dataset_by_name, make_app, run_atmem, run_static
from repro.config import PlatformConfig
from repro.mem.tier import MemoryTier


def cxl_testbed() -> PlatformConfig:
    """A hypothetical DRAM + CXL-expander platform (scaled 1/2048)."""
    dram = MemoryTier(
        name="DRAM",
        capacity_bytes=32 * 2**30 // 2048,  # a deliberately small local pool
        read_latency_ns=90.0,
        write_latency_ns=90.0,
        read_bandwidth_gbps=104.0,
        write_bandwidth_gbps=104.0,
        single_thread_bandwidth_gbps=12.0,
    )
    cxl = MemoryTier(
        name="CXL-expander",
        capacity_bytes=None,
        read_latency_ns=250.0,  # one hop over the CXL link
        write_latency_ns=250.0,
        read_bandwidth_gbps=64.0,  # x16 CXL 3.0-ish
        write_bandwidth_gbps=64.0,
        single_thread_bandwidth_gbps=8.0,
        random_access_amplification=1.0,  # DRAM media behind the link
    )
    return PlatformConfig(
        name="cxl_dram",
        tiers=(dram, cxl),
        fast_tier=0,
        slow_tier=1,
        llc_bytes=32 * 2**10,
        tlb_entries=16,
        threads=64,
        migration_threads=16,
        mlp_per_thread=10.0,
        compute_ns_per_access=0.35,
        mbind_page_overhead_ns=100.0,
        atmem_region_overhead_ns=1_000.0,
        tlb_background_miss_rate=0.015,
    )


def main() -> None:
    platform = cxl_testbed()
    graph = dataset_by_name("twitter", scale=2048)
    print(f"platform: {platform.name}; graph: {graph.name} "
          f"({graph.num_vertices:,} vertices, {graph.num_edges:,} edges)\n")
    # The local DRAM pool is smaller than the dataset, so (as on the
    # paper's KNL testbed) the reference is the preferred NUMA policy
    # rather than an impossible all-DRAM placement.
    header = f"{'app':6s} {'all-CXL':>9s} {'ATMem':>9s} {'DRAM-pref':>9s} {'speedup':>8s} {'ratio':>7s}"
    print(header)
    print("-" * len(header))
    for app_name in ("BFS", "SSSP", "PR", "BC", "CC"):
        factory = lambda: make_app(app_name, graph)
        baseline = run_static(factory, platform, "slow")
        preferred = run_static(factory, platform, "preferred")
        atmem = run_atmem(factory, platform)
        print(f"{app_name:6s} {baseline.seconds * 1e3:7.2f}ms "
              f"{atmem.seconds * 1e3:7.2f}ms {preferred.seconds * 1e3:7.2f}ms "
              f"{baseline.seconds / atmem.seconds:7.2f}x "
              f"{atmem.data_ratio:6.1%}")
    print("\nWithout Optane's random-access amplification the CXL gap is "
          "narrower than the paper's NVM one,\nbut the same small, hot "
          "fraction of data still closes most of it.")


if __name__ == "__main__":
    main()
