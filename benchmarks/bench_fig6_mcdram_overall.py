"""Figure 6: overall performance on the MCDRAM-DRAM (KNL) testbed.

Paper: 1.1x-3x over the all-DRAM baseline with 3.8%-18.2% of data on
MCDRAM; for the datasets that exceed MCDRAM capacity (twitter, rmat27,
friendster) ATMem *beats* the MCDRAM-preferred policy, which fills the
fast memory with whatever was allocated first.
"""

from repro.bench.figures import fig6
from repro.bench.report import emit
from repro.bench.workloads import overall_results


def test_fig6_overall_mcdram_dram(once):
    table = once(fig6)
    emit(table, "fig6.txt")
    speedups = [float(r[5]) for r in table.rows]
    assert min(speedups) > 0.9
    assert max(speedups) > 1.3
    assert max(speedups) < 5.0, "KNL gains should stay ~bandwidth-bound"


def test_fig6_atmem_beats_preferred_on_oversized_datasets(once):
    """The paper's headline KNL result (e.g. 2.79x on friendster BFS)."""

    def wins():
        count = 0
        for app in ("BFS", "PR", "BC"):
            for ds in ("rmat27", "friendster"):
                cell = overall_results("mcdram_dram", app, ds)
                if cell.atmem.seconds < cell.reference.seconds:
                    count += 1
        return count

    assert once(wins) >= 2
