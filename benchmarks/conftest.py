"""Shared pytest configuration for the benchmark harness.

Each benchmark computes one paper table/figure exactly once (pedantic,
one round) — the interesting output is the printed/saved artifact, not a
timing distribution.  Heavy grids are shared between benchmarks through
the memoised cache in :mod:`repro.bench.workloads`.

Pass ``--jobs N`` to fan experiment cells out across N worker processes
(sets ``REPRO_JOBS`` for the whole run); measured batch wall-clocks are
appended to ``BENCH_parallel.json`` next to this directory.
"""

import os
import sys
from pathlib import Path

import pytest

# Self-contained like run_scaling.py / bench_serve.py: `make bench*`
# works without an installed package or an exported PYTHONPATH.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    """Register the ``--jobs`` fan-out knob for benchmark runs."""
    parser.addoption(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for experiment fan-out (sets REPRO_JOBS)",
    )


@pytest.fixture(autouse=True)
def _experiment_jobs(request):
    """Propagate --jobs to the pool and arm wall-clock recording."""
    jobs = request.config.getoption("--jobs")
    if jobs is not None:
        os.environ["REPRO_JOBS"] = str(jobs)
    os.environ.setdefault(
        "REPRO_PARALLEL_JSON",
        str(Path(__file__).resolve().parent.parent / "BENCH_parallel.json"),
    )
    yield


@pytest.fixture
def once(benchmark):
    """Run a paper-experiment callable once under pytest-benchmark timing."""

    def run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return run
