"""Shared pytest configuration for the benchmark harness.

Each benchmark computes one paper table/figure exactly once (pedantic,
one round) — the interesting output is the printed/saved artifact, not a
timing distribution.  Heavy grids are shared between benchmarks through
the memoised cache in :mod:`repro.bench.workloads`.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a paper-experiment callable once under pytest-benchmark timing."""

    def run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return run
