"""Smoke test for the parallel experiment engine (``make bench-smoke``).

Runs one small overall-grid slice (two apps x two datasets on the
NVM-DRAM testbed) through the :class:`repro.sim.parallel.ExperimentPool`
with two workers, checks parallel results exactly match an in-process
serial recomputation, and records the measured batch wall-clock in
``BENCH_parallel.json``.
"""

import os

from repro.bench.report import Table, emit
from repro.bench.workloads import _cell_spec, bench_scale, prime_overall_grid
from repro.sim.parallel import execute_job
from repro.sim.tracecache import TraceCache

SMOKE_APPS = ("BFS", "PR")
SMOKE_DATASETS = ("twitter", "rmat24")


def test_parallel_engine_smoke(once):
    jobs = int(os.environ.get("REPRO_JOBS", "2"))

    def run():
        import repro.bench.workloads as workloads

        workloads._OVERALL_CACHE.clear()
        elapsed = prime_overall_grid(
            "nvm_dram",
            SMOKE_APPS,
            SMOKE_DATASETS,
            jobs=jobs,
            benchmark="parallel_engine_smoke",
        )
        cells = {
            (app, ds): workloads._OVERALL_CACHE[("nvm_dram", app, ds)]
            for app in SMOKE_APPS
            for ds in SMOKE_DATASETS
        }
        return elapsed, cells

    elapsed, cells = once(run)
    table = Table(
        title=f"Parallel engine smoke: 2x2 grid, {jobs} workers",
        columns=["app", "dataset", "baseline_ms", "atmem_ms", "speedup"],
        notes=[f"batch wall-clock {elapsed:.2f} s at scale {bench_scale()}"],
    )
    for (app, ds), cell in cells.items():
        table.add_row(
            app,
            ds,
            cell.baseline.seconds * 1e3,
            cell.atmem.seconds * 1e3,
            cell.speedup,
        )
    emit(table, "parallel_smoke.txt")
    # Parallel results must be bit-identical to a serial in-process rerun.
    for (app, ds), cell in cells.items():
        serial = execute_job(_cell_spec("nvm_dram", app, ds), trace_cache=TraceCache())
        assert serial.baseline.seconds == cell.baseline.seconds, (app, ds)
        assert serial.atmem.seconds == cell.atmem.seconds, (app, ds)
        assert serial.atmem.data_ratio == cell.atmem.data_ratio, (app, ds)
    assert all(cell.speedup > 0.9 for cell in cells.values())
