"""Smoke test for the parallel experiment engine (``make bench-smoke``).

Runs one small overall-grid slice (two apps x two datasets on the
NVM-DRAM testbed) through the :class:`repro.sim.parallel.ExperimentPool`
with two workers, checks parallel results exactly match an in-process
serial recomputation, and records the measured batch wall-clock in
``BENCH_parallel.json``.  The record carries a ``pricing`` field naming
the path that priced the cells (compiled profiles vs full replay), and
a second ``pricing_speedup`` row measures the same warmed cell priced
both ways — the replay-vs-profile win as an artifact, not a claim.  A
third ``mask_speedup`` row does the same one lattice level up: the
figure suite's LLC capacity sweep, derived from one compiled reuse
profile versus re-running the direct ``llc.hit_mask`` fold per
geometry.
"""

import os
import time

import numpy as np

from repro.bench.report import Table, emit
from repro.bench.workloads import _cell_spec, bench_scale, prime_overall_grid
from repro.mem.cache import WorkingSetCache
from repro.sim.executor import PRICING_ENV
from repro.sim.parallel import execute_job, record_parallel_timing
from repro.sim.tracecache import TraceCache

#: The working-set LLC sizes used across the figure suite (mcdram_dram,
#: nvm_dram, hbm_dram testbeds) plus one larger point for sweep shape.
MASK_SWEEP_BYTES = (16 << 10, 32 << 10, 64 << 10, 128 << 10)

SMOKE_APPS = ("BFS", "PR")
SMOKE_DATASETS = ("twitter", "rmat24")


def test_parallel_engine_smoke(once):
    jobs = int(os.environ.get("REPRO_JOBS", "2"))

    def run():
        import repro.bench.workloads as workloads

        workloads._OVERALL_CACHE.clear()
        elapsed = prime_overall_grid(
            "nvm_dram",
            SMOKE_APPS,
            SMOKE_DATASETS,
            jobs=jobs,
            benchmark="parallel_engine_smoke",
        )
        cells = {
            (app, ds): workloads._OVERALL_CACHE[("nvm_dram", app, ds)]
            for app in SMOKE_APPS
            for ds in SMOKE_DATASETS
        }
        return elapsed, cells

    elapsed, cells = once(run)
    table = Table(
        title=f"Parallel engine smoke: 2x2 grid, {jobs} workers",
        columns=["app", "dataset", "baseline_ms", "atmem_ms", "speedup"],
        notes=[f"batch wall-clock {elapsed:.2f} s at scale {bench_scale()}"],
    )
    for (app, ds), cell in cells.items():
        table.add_row(
            app,
            ds,
            cell.baseline.seconds * 1e3,
            cell.atmem.seconds * 1e3,
            cell.speedup,
        )
    emit(table, "parallel_smoke.txt")
    # Parallel results must be bit-identical to a serial in-process rerun.
    for (app, ds), cell in cells.items():
        serial = execute_job(_cell_spec("nvm_dram", app, ds), trace_cache=TraceCache())
        assert serial.baseline.seconds == cell.baseline.seconds, (app, ds)
        assert serial.atmem.seconds == cell.atmem.seconds, (app, ds)
        assert serial.atmem.data_ratio == cell.atmem.data_ratio, (app, ds)
    assert all(cell.speedup > 0.9 for cell in cells.values())
    _record_pricing_speedup()
    _record_mask_speedup()


def _record_pricing_speedup() -> None:
    """Price one warmed cell both ways and record the measured speedup.

    The first run builds the cache artifacts (trace, hit mask, compiled
    profile), so both timed reruns pay only pricing: the profile rerun
    contracts per-page histograms, the ``REPRO_PRICING=replay`` rerun
    walks the access stream.  Results must stay bit-identical — the
    speedup is free only because the answers agree.
    """
    spec = _cell_spec("nvm_dram", "PR", "twitter")
    cache = TraceCache()
    execute_job(spec, trace_cache=cache)  # warm: build trace/mask/profile
    start = time.perf_counter()
    profiled = execute_job(spec, trace_cache=cache)
    profile_seconds = time.perf_counter() - start
    os.environ[PRICING_ENV] = "replay"
    try:
        start = time.perf_counter()
        replayed = execute_job(spec, trace_cache=cache)
        replay_seconds = time.perf_counter() - start
    finally:
        os.environ.pop(PRICING_ENV, None)
    assert replayed.baseline.seconds == profiled.baseline.seconds
    assert replayed.atmem.seconds == profiled.atmem.seconds
    record_parallel_timing(
        {
            "benchmark": "pricing_speedup",
            "jobs": 1,
            "cells": 1,
            "scale": bench_scale(),
            "pricing": "profile",
            "wall_seconds": round(profile_seconds, 3),
            "replay_seconds": round(replay_seconds, 3),
            "speedup": round(replay_seconds / max(profile_seconds, 1e-9), 2),
        }
    )


def _record_mask_speedup() -> None:
    """Sweep the figure-suite LLC capacities both ways; record the win.

    The derived path goes through the real :class:`TraceCache` plumbing
    on a cold cache: one ``stage.reuse_build`` fold for the trace, then
    one O(log N) window solve + compare per geometry.  The direct path
    re-runs ``WorkingSetCache.hit_mask`` (argsort + sort) per geometry.
    Masks must stay bit-identical, and the reuse profile must be built
    exactly once for the whole sweep — the speedup is only recorded
    because the answers agree.
    """
    spec = _cell_spec("nvm_dram", "PR", "twitter")
    warm = TraceCache()
    execute_job(spec, trace_cache=warm)  # builds the trace once
    key = spec.trace_key()
    trace = warm.trace(key, lambda: None)  # served from memory
    addrs = trace.all_addresses()
    sweep = [WorkingSetCache(size) for size in MASK_SWEEP_BYTES]

    start = time.perf_counter()
    direct = [llc.hit_mask(addrs) for llc in sweep]
    direct_seconds = time.perf_counter() - start

    cold = TraceCache(store=None)
    cold.trace(key, lambda: trace)
    start = time.perf_counter()
    derived = [cold.hit_mask(key, llc, trace) for llc in sweep]
    derived_seconds = time.perf_counter() - start

    for want, got in zip(direct, derived):
        assert np.array_equal(want, got)
    assert cold.stats.reuse_misses == 1  # one fold served the whole sweep
    record_parallel_timing(
        {
            "benchmark": "mask_speedup",
            "jobs": 1,
            "cells": len(sweep),
            "scale": bench_scale(),
            "wall_seconds": round(derived_seconds, 3),
            "direct_seconds": round(direct_seconds, 3),
            "speedup": round(direct_seconds / max(derived_seconds, 1e-9), 2),
        }
    )
