"""Multi-tenant study: shared fast memory (the paper's server scenario).

Section 1 motivates adaptive-granularity placement with shared servers:
when several applications compete for the small fast tier, whole-structure
placement starves late arrivals, while chunk-granular placement leaves
room.  This bench admits three tenants onto one host with a fast tier
sized well below their combined data, and compares ATMem tenants against
coarse-grained (whole-object) tenants.
"""

import numpy as np

from repro.apps import make_app
from repro.bench.report import Table, emit
from repro.bench.workloads import bench_platform, bench_scale
from repro.graph.datasets import dataset_by_name
from repro.sim.multitenant import MultiTenantHost


def test_multitenant_shared_fast_memory(once):
    def run():
        from repro.config import mcdram_dram_testbed

        # A fast tier around 2 MiB: far below the three tenants' ~30 MiB.
        platform = mcdram_dram_testbed(scale=8192)
        tenants = [
            ("analytics", "PR", "rmat24"),
            ("traversal", "BFS", "twitter"),
            ("components", "CC", "friendster"),
        ]
        host = MultiTenantHost(platform)
        for name, app_name, ds in tenants:
            graph = dataset_by_name(ds, scale=bench_scale())
            host.admit(name, lambda a=app_name, g=graph: make_app(a, g))
        results = host.run()
        cap = platform.tiers[platform.fast_tier].capacity_bytes
        return results, host.fast_tier_used_bytes(), cap

    results, used, cap = once(run)
    table = Table(
        title="Multi-tenant: three apps sharing one fast tier",
        columns=["tenant", "speedup", "fast_KiB", "data_ratio"],
        notes=[
            f"fast tier {cap / 1024:.0f} KiB total, {used / 1024:.0f} KiB used; "
            "selective placement serves every tenant"
        ],
    )
    for name, r in results.items():
        table.add_row(name, r.speedup, r.fast_bytes / 1024, r.data_ratio)
    emit(table, "multitenant.txt")
    # Every tenant gets fast memory and none regresses.
    assert all(r.fast_bytes > 0 for r in results.values())
    assert all(r.speedup > 0.98 for r in results.values())
    # The shared tier is respected.
    assert used <= cap
    # At least the first two tenants see real gains.
    speedups = [r.speedup for r in results.values()]
    assert sorted(speedups, reverse=True)[1] > 1.05
