"""Section 9 generalisation: SpMV behaves like the graph applications.

The paper evaluated ATMem on sparse matrix computations (SpMV) and reports
"similar results as the graph applications": a small selected ratio with a
substantial speedup on NVM-DRAM.
"""

from repro.apps import SpMV
from repro.bench.report import Table, emit
from repro.bench.workloads import bench_platform, bench_scale
from repro.graph.datasets import dataset_by_name
from repro.sim.experiment import run_atmem, run_static


def spmv_table():
    table = Table(
        title="Section 9: SpMV generalisation on NVM-DRAM",
        columns=["dataset", "baseline_ms", "atmem_ms", "ideal_ms", "speedup", "ratio"],
        notes=["paper: 'similar results as the graph applications'"],
    )
    platform = bench_platform("nvm_dram")
    for ds in ("rmat24", "twitter", "friendster"):
        graph = dataset_by_name(ds, scale=bench_scale())
        factory = lambda: SpMV(graph, num_reps=2)
        baseline = run_static(factory, platform, "slow")
        ideal = run_static(factory, platform, "fast")
        atmem = run_atmem(factory, platform)
        table.add_row(
            ds,
            baseline.seconds * 1e3,
            atmem.seconds * 1e3,
            ideal.seconds * 1e3,
            baseline.seconds / atmem.seconds,
            atmem.data_ratio,
        )
    return table


def test_spmv_generalization(once):
    table = once(spmv_table)
    emit(table, "spmv.txt")
    speedups = [float(r[4]) for r in table.rows]
    ratios = [float(r[5]) for r in table.rows]
    assert max(speedups) > 1.5, "SpMV should benefit like the graph apps"
    assert all(r < 0.4 for r in ratios), "selection should stay partial"
