"""Figures 9 and 10: sensitivity of BFS time to the data ratio.

The paper sweeps the epsilon of Eq. 5 to vary how much data ATMem places
on fast memory, showing (a) performance improves steeply up to an optimal
region, and (b) past it, adding data yields little — ATMem's default
lands in that region.
"""

import numpy as np

from repro.bench.figures import ratio_sweep
from repro.bench.report import emit

SWEEP_DATASETS = ("pokec", "rmat24", "twitter", "rmat27", "friendster")


def _check_diminishing_returns(series, require_drop):
    for ds, points in series.data.items():
        pts = sorted(points)
        ratios = np.array([p[0] for p in pts])
        times = np.array([p[1] for p in pts])
        # Larger ratios must not make things meaningfully worse...
        assert times[-1] <= times[0] * 1.05, f"{ds}: more data should not hurt"
        if require_drop:
            # ...and the curve must actually drop from the baseline.
            assert times.min() < 0.95 * times[0], f"{ds}: no benefit observed"


def test_fig9_ratio_sweep_nvm(once):
    series = once(lambda: ratio_sweep("nvm_dram", SWEEP_DATASETS))
    emit(series, "fig9.txt")
    _check_diminishing_returns(series, require_drop=True)
    # The optimal region is reached at a small ratio: for each dataset the
    # earliest point within 20% of the best *achievable-by-sweeping* time
    # sits well below ratio 0.6.  Datasets where the sweep cannot move the
    # needle are exempt (pokec at reproduction scale is sampling-starved:
    # its 60k-edge adjacency produces too few PEBS events in one
    # iteration; the paper's 31M-edge pokec is not).
    for ds, points in series.data.items():
        pts = sorted(points)
        times = np.array([p[1] for p in pts])
        swept = [t for r, t in pts if 0.0 < r < 1.0]
        if not swept or min(swept) > 0.8 * times[0]:
            continue
        best = min(swept)
        knee_ratio = next(p[0] for p in pts if p[1] <= 1.2 * best)
        assert knee_ratio < 0.6, f"{ds}: optimal region too far right"


def test_fig10_ratio_sweep_mcdram(once):
    series = once(lambda: ratio_sweep("mcdram_dram", SWEEP_DATASETS))
    emit(series, "fig10.txt")
    _check_diminishing_returns(series, require_drop=False)
    # MCDRAM capacity caps the maximum ratio for the oversized datasets.
    for ds in ("rmat27", "friendster"):
        max_ratio = max(p[0] for p in series.data[ds])
        assert max_ratio < 1.0
