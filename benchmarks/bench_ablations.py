"""Ablations of ATMem's design choices (beyond the paper's own tables).

- tree-based global promotion on/off (the Section 4.3 contribution);
- tree arity m (Section 4.3.1 says m controls region granularity);
- chunk-count cap (Section 4.1's metadata/overhead trade-off);
- the coarse-grained whole-object baseline (Tahoe-style related work);
- a uniform random graph, where adaptive chunks should degenerate to
  whole-structure behaviour (Section 9).
"""

import numpy as np

from repro.apps import make_app
from repro.bench.report import Table, emit
from repro.bench.workloads import app_factory, bench_platform, bench_scale
from repro.core.analyzer import AnalyzerConfig
from repro.core.chunks import ChunkingPolicy
from repro.core.runtime import RuntimeConfig
from repro.core.sampling import SamplingConfig
from repro.graph.datasets import dataset_by_name
from repro.graph.generators import uniform_random_graph
from repro.sim.experiment import run_atmem, run_coarse_grained, run_static

DATASET = "friendster"


#: Deliberately starved sampling (1/20 of the default budget): the local
#: selection leaves holes in the hot regions, which is exactly the regime
#: the m-ary tree's information patch-up targets (Section 4.3).
SPARSE_SAMPLING = SamplingConfig(samples_per_chunk=0.4, max_period=65536)


def test_ablation_tree_promotion(once):
    """Promotion must recover sampling holes: more data, no regression."""

    def run():
        platform = bench_platform("nvm_dram")
        factory = app_factory("BFS", DATASET)
        on = run_atmem(
            factory,
            platform,
            runtime_config=RuntimeConfig(sampling=SPARSE_SAMPLING),
        )
        off = run_atmem(
            factory,
            platform,
            runtime_config=RuntimeConfig(
                sampling=SPARSE_SAMPLING,
                analyzer=AnalyzerConfig(enable_promotion=False),
            ),
        )
        return on, off

    on, off = once(run)
    table = Table(
        title="Ablation: tree-based global promotion (BFS/friendster, NVM-DRAM)",
        columns=["variant", "time_ms", "data_ratio", "regions"],
    )
    table.add_row("promotion on", on.seconds * 1e3, on.data_ratio, on.migration.regions)
    table.add_row("promotion off", off.seconds * 1e3, off.data_ratio, off.migration.regions)
    emit(table, "ablation_promotion.txt")
    assert on.data_ratio > off.data_ratio, (
        "under sparse sampling the tree must patch holes (select more)"
    )
    assert on.seconds <= off.seconds * 1.02, "patching must not hurt"


def test_ablation_tree_arity(once):
    """Higher arity coarsens promoted regions (fewer, larger regions)."""

    def run():
        platform = bench_platform("nvm_dram")
        factory = app_factory("BFS", DATASET)
        results = {}
        for m in (2, 4, 8):
            results[m] = run_atmem(
                factory,
                platform,
                runtime_config=RuntimeConfig(
                    sampling=SPARSE_SAMPLING,
                    analyzer=AnalyzerConfig(m=m),
                ),
            )
        return results

    results = once(run)
    table = Table(
        title="Ablation: m-ary tree arity (BFS/friendster, NVM-DRAM)",
        columns=["m", "time_ms", "data_ratio", "regions"],
    )
    for m, r in results.items():
        table.add_row(m, r.seconds * 1e3, r.data_ratio, r.migration.regions)
    emit(table, "ablation_arity.txt")
    times = [r.seconds for r in results.values()]
    assert max(times) < 1.3 * min(times), "arity should not change the story"


def test_ablation_chunk_granularity(once):
    """Too-coarse chunking loses selectivity (Section 4.1 trade-off)."""

    def run():
        platform = bench_platform("nvm_dram")
        factory = app_factory("PR", DATASET)
        results = {}
        for max_chunks in (16, 256, 1024):
            results[max_chunks] = run_atmem(
                factory,
                platform,
                runtime_config=RuntimeConfig(
                    chunking=ChunkingPolicy(max_chunks=max_chunks)
                ),
            )
        return results

    results = once(run)
    table = Table(
        title="Ablation: chunk-count cap (PR/friendster, NVM-DRAM)",
        columns=["max_chunks", "time_ms", "data_ratio"],
    )
    for k, r in results.items():
        table.add_row(k, r.seconds * 1e3, r.data_ratio)
    emit(table, "ablation_chunks.txt")
    # Fine chunking should place at most as much data as coarse chunking
    # while performing at least comparably.
    assert results[1024].seconds <= results[16].seconds * 1.15


def test_ablation_coarse_grained_baseline(once):
    """ATMem matches whole-object placement with far less fast memory."""

    def run():
        platform = bench_platform("nvm_dram")
        factory = app_factory("PR", DATASET)
        return (
            run_atmem(factory, platform),
            run_coarse_grained(factory, platform),
        )

    atmem, coarse = once(run)
    table = Table(
        title="Ablation: ATMem vs coarse-grained whole-object placement",
        columns=["variant", "time_ms", "data_ratio"],
    )
    table.add_row("atmem (chunks)", atmem.seconds * 1e3, atmem.data_ratio)
    table.add_row("coarse (objects)", coarse.seconds * 1e3, coarse.data_ratio)
    emit(table, "ablation_coarse.txt")
    assert atmem.data_ratio <= coarse.data_ratio + 1e-9
    assert atmem.seconds <= coarse.seconds * 1.25


def test_ablation_regular_workload(once):
    """Section 9's generalisation claim: uniform (regular-like) access
    patterns still benefit — the vertex arrays are uniformly hot, so the
    adaptive chunks simply degenerate toward whole-structure placement."""

    def run():
        platform = bench_platform("nvm_dram")
        skewed_graph = dataset_by_name(DATASET, scale=bench_scale())
        uniform = uniform_random_graph(
            skewed_graph.num_vertices, skewed_graph.num_edges, seed=5
        )
        out = {}
        for label, graph in (("skewed", skewed_graph), ("uniform", uniform)):
            factory = lambda: make_app("BFS", graph)
            baseline = run_static(factory, platform, "slow")
            at = run_atmem(factory, platform)
            out[label] = baseline.seconds / at.seconds
        return out

    speedups = once(run)
    table = Table(
        title="Ablation: degree skew vs ATMem benefit (BFS, NVM-DRAM)",
        columns=["graph", "speedup_vs_baseline"],
    )
    for label, s in speedups.items():
        table.add_row(label, s)
    emit(table, "ablation_uniform.txt")
    # Both benefit substantially; neither collapses.
    assert speedups["skewed"] > 1.5
    assert speedups["uniform"] > 1.5
