"""Figures 7 and 8: the fraction of data ATMem places on fast memory.

Paper: 5%-18% on the NVM-DRAM testbed (Fig. 7) and 3.8%-18.2% on the
MCDRAM-DRAM testbed (Fig. 8).
"""

import numpy as np

from repro.bench.figures import fig7, fig8
from repro.bench.report import emit


def test_fig7_data_ratio_nvm(once):
    table = once(fig7)
    emit(table, "fig7.txt")
    ratios = [float(r[2]) for r in table.rows]
    assert all(0.0 < r < 0.45 for r in ratios), "partial placement expected"
    assert float(np.median(ratios)) < 0.20, "median ratio near the paper band"


def test_fig8_data_ratio_mcdram(once):
    table = once(fig8)
    emit(table, "fig8.txt")
    ratios = [float(r[2]) for r in table.rows]
    assert all(0.0 < r < 0.45 for r in ratios)
    assert float(np.median(ratios)) < 0.20
