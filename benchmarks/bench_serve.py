#!/usr/bin/env python
"""Serving-layer throughput benchmark: ``make serve-smoke``.

Drives a seeded arrival trace (admits, departs, phase changes,
measures — see :func:`repro.serve.generate_arrivals`) through a
resident :class:`~repro.serve.PlacementService` and records the
sustained serving rate plus decision-latency quantiles to
``BENCH_serve.json``:

- ``placements_per_s`` — committed placement decisions (successful
  admits + phase changes) per wall-clock second over the whole trace;
- ``decision_latency`` — p50/p99/max submit-to-settle seconds from the
  service's own :class:`~repro.obs.metrics.LatencyTracker`;
- ``statuses`` — how the trace's jobs settled (``ok``/``expired``/...);
- ``slo`` — per-tenant SLO attainment, error-budget remaining, and
  burn rate, scraped from the service's **live** exposition endpoint
  (``expose_port=0``) while the trace runs — the row proves the
  ``/metrics``+``/slo`` plane works over the wire, not just in-process.

The run also proves the robustness contract the serving layer exists
for, on every invocation (not just under ``--strict``):

1. **zero audit failures** — the service audits allocator/page-table
   consistency after every committed mutation and raises on violation,
   so a completed trace *is* the proof;
2. **kill-and-recover** — the same trace is replayed against a journal,
   killed (no drain, no checkpoint) halfway, recovered, and resumed;
   the final canonical tenant table (names, app recipes, fast-tier
   placements) must be bit-identical to the uninterrupted run's.

``--smoke`` shrinks the trace for CI; ``--strict`` additionally fails
the run when p99 decision latency blows the budget (generous by
default: this is a functional gate, not a performance SLO — pass
``--p99-budget`` to tighten it).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO / "BENCH_serve.json"

sys.path.insert(0, str(REPO / "src"))
from repro.config import platform_by_name  # noqa: E402
from repro.serve import (  # noqa: E402
    ServiceConfig,
    generate_arrivals,
    serve_trace,
)


def canonical_table(table: list[dict]) -> str:
    """The VA-independent tenant table as one comparable JSON string."""
    return json.dumps(
        [
            {
                "name": t["name"],
                "app": t.get("app"),
                "phase": t.get("phase", 0),
                "placements": t["placements"],
            }
            for t in table
        ],
        sort_keys=True,
    )


def bench_throughput(args: argparse.Namespace) -> dict:
    """One uninterrupted pass over the trace; the recorded row."""
    jobs = generate_arrivals(args.events, seed=args.seed)
    config = ServiceConfig(
        platform=platform_by_name(args.platform, scale=args.scale),
        expose_port=0,
    )
    report = serve_trace(jobs, config)
    exposition = report.get("exposition") or {}
    slo = {
        tenant: {
            "burn": snap["burn"],
            "alert": snap["alert"],
            "latency_attainment": snap["latency"]["attainment"],
            "admission_attainment": snap["admission"]["attainment"],
            "latency_budget_remaining": snap["latency"]["budget_remaining"],
            "admission_budget_remaining": snap["admission"]["budget_remaining"],
        }
        for tenant, snap in sorted(exposition.get("slo", {}).items())
    }
    return {
        "benchmark": "serve_throughput",
        "platform": args.platform,
        "scale": args.scale,
        "events": args.events,
        "seed": args.seed,
        "jobs_settled": report["jobs"],
        "statuses": report["statuses"],
        "placements": report["placements"],
        "placements_per_s": report["placements_per_s"],
        "wall_seconds": report["wall_seconds"],
        "decision_latency": report["health"]["decision_latency"],
        "counters": report["health"]["counters"],
        "slo": slo,
        "exposition_series": len(exposition.get("metrics", {})),
    }


def check_kill_recover(args: argparse.Namespace) -> dict:
    """Kill mid-trace, recover from the journal, compare tenant tables."""
    jobs = generate_arrivals(args.events, seed=args.seed)
    kill_at = max(1, args.events // 2)
    platform = platform_by_name(args.platform, scale=args.scale)
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        quiet = serve_trace(
            jobs, ServiceConfig(platform=platform, journal_root=Path(tmp) / "a")
        )
        chaos_root = Path(tmp) / "b"
        partial = serve_trace(
            jobs,
            ServiceConfig(platform=platform, journal_root=chaos_root),
            kill_after=kill_at,
        )
        resumed = serve_trace(
            jobs[kill_at:],
            ServiceConfig(platform=platform, journal_root=chaos_root),
        )
    identical = canonical_table(quiet["tenant_table"]) == canonical_table(
        resumed["tenant_table"]
    )
    return {
        "benchmark": "serve_kill_recover",
        "events": args.events,
        "kill_after": kill_at,
        "killed": partial["killed"],
        "recoveries": resumed["health"]["counters"].get("recoveries", 0),
        "tenant_tables_identical": identical,
        "journal_corruptions": len(resumed["health"]["journal_corruptions"]),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=48)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--platform", default="nvm_dram")
    parser.add_argument("--scale", type=int, default=512)
    parser.add_argument(
        "--smoke", action="store_true",
        help="short trace for CI (16 events), implies --strict",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="non-zero exit on budget/recovery violations",
    )
    parser.add_argument(
        "--p99-budget", type=float, default=5.0, metavar="SECONDS",
        help="p99 decision-latency budget under --strict (default: 5.0)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help=f"record file (default: {BENCH_JSON})",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.events = min(args.events, 16)
        args.strict = True

    started = time.strftime("%Y-%m-%dT%H:%M:%S")
    row = bench_throughput(args)
    latency = row["decision_latency"]
    print(f"serve throughput: {row['placements']} placement(s) in "
          f"{row['wall_seconds']:.2f}s "
          f"({row['placements_per_s']:.2f}/s sustained)")
    print(f"  decision latency: p50={latency['p50'] * 1e3:.1f}ms "
          f"p99={latency['p99'] * 1e3:.1f}ms max={latency['max'] * 1e3:.1f}ms")
    print(f"  statuses: {row['statuses']}")
    if row["slo"]:
        worst = max(row["slo"].values(), key=lambda s: s["burn"])
        print(f"  slo (scraped from live /metrics, "
              f"{row['exposition_series']} series): {len(row['slo'])} "
              f"tenant(s), worst burn {worst['burn']:.2f}")

    recovery = check_kill_recover(args)
    print(f"kill-and-recover: killed after {recovery['kill_after']} job(s), "
          f"{recovery['recoveries']} recovery, tenant tables "
          + ("identical" if recovery["tenant_tables_identical"] else "DIVERGED"))

    records = [dict(row, recorded=started), dict(recovery, recorded=started)]
    out = Path(args.out) if args.out else BENCH_JSON
    out.write_text(json.dumps(records, indent=2) + "\n", encoding="utf-8")
    print(f"recorded to {out}")

    failures = []
    # The audit gate is implicit: ConsistencyError inside the service
    # would have aborted either trace long before this point.
    if not recovery["tenant_tables_identical"]:
        failures.append("recovered tenant table diverged from quiet run")
    if not recovery["killed"] or recovery["recoveries"] < 1:
        failures.append("kill-and-recover scenario did not exercise recovery")
    if args.strict and latency["p99"] > args.p99_budget:
        failures.append(
            f"p99 decision latency {latency['p99']:.3f}s exceeds "
            f"{args.p99_budget:.3f}s budget"
        )
    if args.strict and not row["slo"]:
        failures.append(
            "no per-tenant SLO rows scraped from the live exposition "
            "endpoint (expose_port=0 should have served /metrics + /slo)"
        )
    if failures:
        print("FAILED:\n  - " + "\n  - ".join(failures))
        return 1
    print("serving gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
