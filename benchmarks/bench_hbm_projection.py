"""Projection study: ATMem on a modern HBM + DDR5 platform.

Beyond the paper: projects the technique onto the successor of the KNL
configuration (Sapphire-Rapids-HBM-class — 64 GB HBM2e at ~800 GB/s next
to DDR5 at ~250 GB/s, independent channels).  The bandwidth *ratio* is
smaller than MCDRAM/DDR4 (3.2x vs 4.4x) and the baseline DDR5 is far
faster, so the expected shape is: consistent but moderate gains, with the
same small data ratios.
"""

from repro.bench.report import Table, emit
from repro.bench.workloads import app_factory, bench_scale
from repro.config import hbm_dram_testbed
from repro.sim.experiment import run_atmem, run_static


def test_hbm_projection(once):
    def run():
        platform = hbm_dram_testbed(scale=max(1, bench_scale() // 2))
        rows = []
        for app in ("BFS", "PR", "CC"):
            for ds in ("rmat24", "friendster"):
                factory = app_factory(app, ds)
                baseline = run_static(factory, platform, "slow")
                atmem = run_atmem(factory, platform)
                rows.append(
                    (
                        app,
                        ds,
                        baseline.seconds * 1e3,
                        atmem.seconds * 1e3,
                        baseline.seconds / atmem.seconds,
                        atmem.data_ratio,
                    )
                )
        return rows

    rows = once(run)
    table = Table(
        title="Projection: ATMem on HBM2e + DDR5 (not in the paper)",
        columns=["app", "dataset", "ddr5_ms", "atmem_ms", "speedup", "ratio"],
        notes=[
            "smaller bandwidth ratio than KNL (3.2x vs 4.4x) and a much "
            "faster baseline: gains moderate, selectivity unchanged"
        ],
    )
    for row in rows:
        table.add_row(*row)
    emit(table, "hbm_projection.txt")
    speedups = [r[4] for r in rows]
    ratios = [r[5] for r in rows]
    # The technique must carry over: real gains, still selective.
    assert all(s >= 0.99 for s in speedups)
    assert max(speedups) > 1.15
    assert max(speedups) < 3.0, "HBM gains should be milder than Optane's"
    assert all(r < 0.4 for r in ratios)
