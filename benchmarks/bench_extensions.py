"""Benchmarks for the paper's Section 9 future-work extensions.

These go beyond the paper's own tables: they implement and measure the
three extensions the discussion section sketches, plus the hot-region
locality sensitivity that motivates chunk-granular placement.

- bandwidth aggregation on KNL's independent channels (limitation 2);
- migration overlapped with graph iterations (limitation 3);
- query-adaptive re-placement (the Section 1 motivation that placement
  depends on the query);
- vertex-labelling locality (degree-sorted vs randomly shuffled ids).
"""

import numpy as np

from repro.apps import BFS, make_app
from repro.bench.report import Table, emit
from repro.bench.workloads import app_factory, bench_platform, bench_scale
from repro.core.adaptive import AdaptiveSession
from repro.core.overlap import OverlapModel
from repro.core.runtime import AtMemRuntime
from repro.graph.datasets import dataset_by_name
from repro.graph.reorder import degree_sort, random_relabel
from repro.sim.executor import TraceExecutor
from repro.sim.experiment import run_atmem, run_static


def test_extension_bandwidth_aggregation(once):
    """Section 9.2: splitting traffic across KNL's independent channels."""

    def run():
        from repro.core.analyzer import AtMemAnalyzer
        from repro.core.bandwidth_split import projected_fast_share, split_selection

        platform = bench_platform("mcdram_dram")
        graph = dataset_by_name("rmat24", scale=bench_scale())
        system = platform.build_system()
        runtime = AtMemRuntime(system, platform=platform)
        app = make_app("PR", graph, num_sweeps=2)
        app.register(runtime)
        executor = TraceExecutor(system)
        runtime.atmem_profiling_start()
        executor.run(app.run_once(), miss_observer=runtime)
        runtime.atmem_profiling_stop()
        decision, _ = runtime.atmem_optimize()
        all_fast = executor.run(app.run_once())
        share_before = projected_fast_share(decision)
        # Demote traffic beyond the bandwidth-proportional share and
        # migrate the demoted chunks back to DRAM.
        demoted = split_selection(decision, system.fast, system.slow)
        for name in decision.objects:
            obj = runtime.objects[name]
            sel = decision.objects[name]
            sizes = sel.geometry.chunk_sizes()
            for chunk in np.nonzero(~sel.selected)[0]:
                start, end = sel.geometry.chunk_byte_range(int(chunk))
                from repro.mem.address_space import PAGE_SIZE

                va = obj.base_va + start
                nbytes = -(-(end - start) // PAGE_SIZE) * PAGE_SIZE
                if system.address_space.tier_of_page(va) == system.fast_tier:
                    system.address_space.remap_range(va, nbytes, system.slow_tier)
        split_run = executor.run(app.run_once())
        return share_before, demoted, all_fast.seconds, split_run.seconds

    share, demoted, t_all_fast, t_split = once(run)
    table = Table(
        title="Extension: bandwidth aggregation on KNL (PR/rmat24)",
        columns=["placement", "time_ms"],
        notes=[
            "KNL's MCDRAM and DDR4 have independent channels; leaving the "
            "bandwidth-proportional share of traffic on DDR4 must not hurt"
        ],
    )
    table.add_row("all hot data on MCDRAM", t_all_fast * 1e3)
    table.add_row(f"bandwidth split ({demoted} chunks demoted)", t_split * 1e3)
    emit(table, "extension_bandwidth.txt")
    # With concurrent channel service the split placement stays competitive.
    assert t_split < t_all_fast * 1.15


def test_extension_overlapped_migration(once):
    """Section 9.3: hide migration under a running iteration."""

    def run():
        platform = bench_platform("nvm_dram")
        factory = app_factory("PR", "friendster")
        result = run_atmem(factory, platform)
        baseline = run_static(factory, platform, "slow")
        return result, baseline

    result, baseline = once(run)
    model = OverlapModel(contention=0.15)
    stop_world = result.one_time_overhead_seconds
    overlapped = result.profiling_overhead_seconds + model.visible_overhead_seconds(
        result.first_iteration, result.migration
    )
    gain = baseline.seconds - result.seconds
    table = Table(
        title="Extension: overlapped migration (PR/friendster, NVM-DRAM)",
        columns=["strategy", "one_time_overhead_us", "iters_to_amortize"],
    )
    table.add_row("stop-the-world", stop_world * 1e6, stop_world / gain)
    table.add_row("overlapped", overlapped * 1e6, overlapped / gain)
    emit(table, "extension_overlap.txt")
    assert overlapped < stop_world
    assert overlapped / gain < 3.0


def test_extension_query_adaptation(once):
    """Query-dependent placement (the paper's Section 1 motivation)."""

    def run():
        from repro.config import nvm_dram_testbed
        from repro.graph.generators import chung_lu_graph
        from repro.graph.csr import CSRGraph

        a = chung_lu_graph(12_000, 150_000, seed=21, hub_shuffle=0.0)
        b = chung_lu_graph(12_000, 150_000, seed=22, hub_shuffle=0.0)
        src_a = np.repeat(np.arange(a.num_vertices, dtype=np.int64), a.degrees)
        src_b = np.repeat(np.arange(b.num_vertices, dtype=np.int64), b.degrees)
        graph = CSRGraph.from_edges(
            a.num_vertices + b.num_vertices,
            np.concatenate([src_a, src_b + a.num_vertices]),
            np.concatenate([a.adjacency, b.adjacency + a.num_vertices]),
            symmetrize=False,
            dedup=False,
            name="two-community",
        )
        platform = nvm_dram_testbed(scale=1 << 19)  # tight fast tier
        system = platform.build_system()
        runtime = AtMemRuntime(system, platform=platform)
        app = BFS(graph, source=0)
        app.register(runtime)
        session = AdaptiveSession(
            app=app,
            runtime=runtime,
            executor=TraceExecutor(system),
            refresh_threshold=0.6,
        )
        times = []
        for query in range(6):
            # Queries alternate communities every three runs.
            app.source = 0 if query < 3 else graph.num_vertices - 1
            record = session.run_query()
            times.append((query, record.cost.seconds, record.reoptimized))
        return times, session.reoptimizations

    times, reoptimizations = once(run)
    table = Table(
        title="Extension: query-adaptive placement (BFS, community shift at query 3)",
        columns=["query", "time_ms", "reoptimized"],
    )
    for query, seconds, reopt in times:
        table.add_row(query, seconds * 1e3, str(reopt))
    emit(table, "extension_adaptive.txt")
    assert reoptimizations >= 2, "the community shift must trigger a refresh"
    assert reoptimizations <= 4, "stable phases must not churn"


def test_extension_labelling_locality(once):
    """Chunk placement needs spatial hot-region locality (Section 4.1)."""

    def run():
        platform = bench_platform("nvm_dram")
        base = dataset_by_name("friendster", scale=bench_scale())
        out = {}
        for label, graph in (
            ("degree-sorted", degree_sort(base)),
            ("original", base),
            ("shuffled", random_relabel(base, seed=3)),
        ):
            factory = lambda: BFS(graph)
            baseline = run_static(factory, platform, "slow")
            atmem = run_atmem(factory, platform)
            out[label] = (baseline.seconds / atmem.seconds, atmem.data_ratio)
        return out

    results = once(run)
    table = Table(
        title="Extension: vertex-labelling locality vs ATMem benefit (BFS/friendster)",
        columns=["labelling", "speedup", "data_ratio"],
    )
    for label, (speedup, ratio) in results.items():
        table.add_row(label, speedup, ratio)
    emit(table, "extension_locality.txt")
    # Degree-sorted labels concentrate the hot region; ATMem's benefit
    # should not degrade relative to a random relabelling.
    assert results["degree-sorted"][0] >= results["shuffled"][0] * 0.9


def test_extension_nvm_consistency(once):
    """Section 9.1: the durability tax of crash-consistent NVM data, and
    how ATMem's migration of write-hot data to DRAM reduces it."""

    def run():
        from repro.core.consistency import ConsistencyModel, run_with_consistency
        from repro.core.runtime import AtMemRuntime

        platform = bench_platform("nvm_dram")
        graph = dataset_by_name("rmat24", scale=bench_scale())
        model = ConsistencyModel()
        out = {}
        for label, optimize in (("all-NVM durable", False), ("after ATMem", True)):
            system = platform.build_system()
            runtime = AtMemRuntime(system, platform=platform)
            app = make_app("CC", graph)
            app.register(runtime)
            executor = TraceExecutor(system)
            runtime.atmem_profiling_start()
            executor.run(app.run_once(), miss_observer=runtime)
            runtime.atmem_profiling_stop()
            if optimize:
                runtime.atmem_optimize()
            trace = app.run_once()
            cost = executor.run(trace)
            total, tax = run_with_consistency(model, system, trace, cost.seconds)
            out[label] = (cost.seconds, tax)
        return out

    results = once(run)
    table = Table(
        title="Extension: NVM crash-consistency tax (CC/rmat24, NVM-DRAM)",
        columns=["placement", "base_ms", "durability_tax_ms"],
        notes=[
            "durable stores need clwb+fence and logging on NVM only; "
            "migrating write-hot data to DRAM avoids the tax"
        ],
    )
    for label, (base, tax) in results.items():
        table.add_row(label, base * 1e3, tax * 1e3)
    emit(table, "extension_consistency.txt")
    baseline_tax = results["all-NVM durable"][1]
    atmem_tax = results["after ATMem"][1]
    assert baseline_tax > 0.0
    assert atmem_tax < baseline_tax, "migration must shed durability cost"
