"""Table 3: ATMem vs the all-DRAM ideal on the NVM-DRAM testbed.

Paper: per-app minimum slowdowns of 9%-54% and maximums of 1.8x-3.0x —
ATMem bridges most of the NVM/DRAM gap with a small DRAM footprint.
"""

from repro.bench.report import emit
from repro.bench.tables import table3


def test_table3_slowdown_vs_ideal(once):
    table = once(table3)
    emit(table, "table3.txt")
    mins = [float(r[1]) for r in table.rows]
    maxs = [float(r[2]) for r in table.rows]
    # Minimum slowdown per app should be modest (paper: 9%-54%).
    assert all(m < 1.0 for m in mins), "best-case gap should be under 2x"
    # Maximum slowdown per app should stay within a small multiple
    # (paper: 0.8x-2.0x extra time, i.e. max 1.8x-3.0x total).
    assert all(m < 3.0 for m in maxs)
    # And ATMem never beats the ideal by more than noise.
    assert all(m > -0.05 for m in mins)
