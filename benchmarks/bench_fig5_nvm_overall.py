"""Figure 5: overall performance on the NVM-DRAM testbed.

Paper: ATMem reaches 1.25x-8.4x over the all-NVM baseline (average
1.7x-3.4x per app) and approaches the all-DRAM ideal.
"""

import numpy as np

from repro.bench.figures import fig5
from repro.bench.report import emit
from repro.bench.workloads import BENCH_APPS, BENCH_DATASETS, overall_results


def test_fig5_overall_nvm_dram(once):
    table = once(fig5)
    emit(table, "fig5.txt")
    speedups = [float(r[5]) for r in table.rows]
    assert min(speedups) > 0.95, "ATMem must never be slower than baseline"
    assert max(speedups) > 2.5, "large datasets should see multi-x gains"
    # Per-app averages in/near the paper's 1.7x-3.4x band.
    for app in BENCH_APPS:
        app_speedups = [
            overall_results("nvm_dram", app, ds).speedup for ds in BENCH_DATASETS
        ]
        avg = float(np.mean(app_speedups))
        assert 1.0 <= avg < 6.0, f"{app}: average speedup {avg:.2f}x out of band"


def test_fig5_atmem_between_baseline_and_ideal(once):
    def worst_violation():
        worst = 0.0
        for app in BENCH_APPS:
            for ds in BENCH_DATASETS:
                cell = overall_results("nvm_dram", app, ds)
                # ATMem must not beat the all-DRAM ideal by more than noise
                # nor lose to the baseline.
                worst = max(worst, cell.reference.seconds / cell.atmem.seconds)
        return worst

    assert once(worst_violation) < 1.05
