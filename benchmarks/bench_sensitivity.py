"""Sensitivity studies over ATMem's remaining knobs.

The paper sweeps only epsilon (Figures 9/10); these benches sweep the
other knobs with the generic sweep driver and check the robustness claims
the design implies:

- **sampling budget** (Section 5.1): thanks to the tree patch-up, the
  final placement quality should degrade gracefully as the sampling
  budget shrinks — not cliff off;
- **base TR threshold** (Eq. 5's Theta): a broad plateau around the 0.5
  default.
"""

import numpy as np

from repro.bench.report import Series, Table, emit
from repro.bench.workloads import app_factory, bench_platform
from repro.core.analyzer import AnalyzerConfig
from repro.core.runtime import RuntimeConfig
from repro.sim.experiment import run_static
from repro.sim.sweep import run_sweep, sampling_budget_configurator

DATASET = "twitter"


def test_sensitivity_sampling_budget(once):
    def run():
        platform = bench_platform("nvm_dram")
        factory = app_factory("PR", DATASET)
        baseline = run_static(factory, platform, "slow")
        points = run_sweep(
            factory,
            platform,
            [0.25, 1.0, 4.0, 8.0, 32.0],
            sampling_budget_configurator(),
        )
        return baseline.seconds, points

    baseline_seconds, points = once(run)
    table = Table(
        title=f"Sensitivity: sampling budget (PR/{DATASET}, NVM-DRAM)",
        columns=["samples_per_chunk", "speedup", "data_ratio", "profiling_pct"],
        notes=["the tree patch-up keeps quality up as sampling thins out"],
    )
    speedups = []
    for p in points:
        profiling_pct = (
            100.0
            * p.result.profiling_overhead_seconds
            / p.result.first_iteration.seconds
        )
        speedup = baseline_seconds / p.seconds
        speedups.append(speedup)
        table.add_row(p.value, speedup, p.data_ratio, profiling_pct)
    emit(table, "sensitivity_sampling.txt")
    # Graceful degradation: even the leanest budget keeps most of the win.
    assert speedups[-1] > 1.0
    assert speedups[0] > 0.6 * speedups[-1]
    # And the rich budget must not blow the paper's overhead bound.
    assert float(table.rows[-1][3]) < 10.0


def test_sensitivity_base_tr_threshold(once):
    def run():
        platform = bench_platform("nvm_dram")
        factory = app_factory("BFS", DATASET)
        baseline = run_static(factory, platform, "slow")
        results = []
        for theta in (0.2, 0.35, 0.5, 0.75, 1.0):
            config = RuntimeConfig(
                analyzer=AnalyzerConfig(base_tr_threshold=theta)
            )
            from repro.sim.experiment import run_atmem

            results.append((theta, run_atmem(factory, platform, runtime_config=config)))
        return baseline.seconds, results

    baseline_seconds, results = once(run)
    table = Table(
        title=f"Sensitivity: Eq. 5 base TR threshold (BFS/{DATASET}, NVM-DRAM)",
        columns=["theta", "speedup", "data_ratio"],
    )
    speedups = []
    for theta, result in results:
        speedup = baseline_seconds / result.seconds
        speedups.append(speedup)
        table.add_row(theta, speedup, result.data_ratio)
    emit(table, "sensitivity_theta.txt")
    # A plateau: the best and worst theta differ by less than 40%.
    assert max(speedups) < 1.4 * min(speedups)
    assert min(speedups) > 1.0
