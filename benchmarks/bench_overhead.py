"""Section 7.4: overhead analysis.

Paper: profiling costs less than 10% of the first iteration; the one-time
profiling + migration cost is amortised within a few iterations because
each later iteration runs faster.
"""

from repro.bench.report import emit
from repro.bench.tables import overhead_analysis


def test_overhead_analysis(once):
    table = once(overhead_analysis)
    emit(table, "overhead.txt")
    profiling_pcts = [float(r[2]) for r in table.rows]
    amortization = [float(r[5]) for r in table.rows]
    # Profiling overhead below the paper's 10% bound for every workload.
    assert max(profiling_pcts) < 10.0
    # Most workloads amortise the one-time costs within a few iterations.
    quick = [a for a in amortization if a < 5.0]
    assert len(quick) >= len(amortization) * 0.7
