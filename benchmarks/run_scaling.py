#!/usr/bin/env python
"""Scaling study for the shared data plane: ``make bench-scaling``.

Runs the Figure 5 reproduction end-to-end through ``repro.cli`` in five
configurations and refreshes ``BENCH_parallel.json`` with the measured
rows:

1. ``serial``  — ``--jobs 1``, no trace store (the baseline the paper
   artifacts were produced with);
2. ``cold-2``  — ``--jobs 2`` against a *fresh* trace store (workers
   populate it while racing);
3. ``warm-2``  — ``--jobs 2`` against the store phase 2 filled;
4. ``cold-4``  — ``--jobs 4``, fresh store;
5. ``warm-4``  — ``--jobs 4``, warm store.

Each phase is a separate process, so nothing leaks between phases except
the on-disk store.  After every phase the ``fig5.txt`` artifact digest is
compared against the serial run: the data plane must be invisible in
results (bit-identical figures) while changing only the wall-clock.

Every recorded row carries a per-stage wall-clock breakdown (graph
build / trace generation / reuse-profile build / mask derivation /
direct hit-mask solve / profile build / pricing — see
:func:`repro.sim.parallel.stage_breakdown`), printed per phase, so a
regressed configuration names the stage that slowed down instead of
just the total.  ``stage.reuse_build`` + ``stage.mask_derive`` replace
most of ``stage.hit_mask`` since masks are derived from compiled reuse
profiles (:mod:`repro.sim.reusepack`); the direct stage only appears
for cache models the profile cannot describe.

Exit status is non-zero if any phase produces different bytes, if a warm
parallel run fails to beat serial, or if a cold parallel run regresses
noticeably below serial (the pre-store failure mode this PR removes).
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
ARTIFACT = REPO / "benchmarks" / "results" / "fig5.txt"
BENCH_JSON = REPO / "BENCH_parallel.json"

sys.path.insert(0, str(REPO / "src"))
from repro.bench.regression import diagnose_cold_parallel  # noqa: E402

#: How much slower a cold parallel run may be than serial.  With >1 core
#: the store population overlaps compute across workers, so cold must
#: stay close to serial (the tolerance absorbs fork/IPC cost plus the
#: ~15% run-to-run scheduling noise repeated identical runs show).  On a
#: single core nothing overlaps — worker dispatch and ~1.4 GB of store
#: writes are purely additive (measured: user time flat, all overhead in
#: sys time) — so the gate there only guards against the pre-store 2x
#: collapse that motivated this data plane.
COLD_SLOWDOWN_TOLERANCE = 1.25 if (os.cpu_count() or 1) > 1 else 1.85
#: A warm 4-worker run must beat serial by at least this factor.
WARM_TARGET_SPEEDUP = 1.8


def run_phase(phase: str, jobs: int, store: Path | None) -> tuple[float, str]:
    """Run ``reproduce fig5`` once; returns (wall seconds, artifact digest)."""
    cmd = [
        sys.executable, "-m", "repro.cli", "reproduce", "fig5",
        "--jobs", str(jobs),
    ]
    if store is not None:
        cmd += ["--trace-store", str(store)]
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_PARALLEL_JSON"] = str(BENCH_JSON)
    before = len(_records())
    os.sync()  # don't bill this phase for the previous phase's writeback
    start = time.perf_counter()
    subprocess.run(cmd, cwd=REPO, env=env, check=True,
                   stdout=subprocess.DEVNULL)
    elapsed = time.perf_counter() - start
    _tag_new_records(before, phase)
    digest = hashlib.sha256(ARTIFACT.read_bytes()).hexdigest()
    return elapsed, digest


def _records() -> list[dict]:
    if not BENCH_JSON.exists():
        return []
    return json.loads(BENCH_JSON.read_text())


def _tag_new_records(start_index: int, phase: str) -> None:
    records = _records()
    for entry in records[start_index:]:
        entry["phase"] = phase
    BENCH_JSON.write_text(json.dumps(records, indent=2) + "\n")


def _stage_summary(phase: str) -> str:
    """One-line per-stage wall-clock breakdown over a phase's rows."""
    totals: dict[str, float] = {}
    for entry in _records():
        if entry.get("phase") != phase:
            continue
        stages = entry.get("stages")
        if not isinstance(stages, dict):
            continue
        for name, info in stages.items():
            if isinstance(info, dict):
                totals[name] = totals.get(name, 0.0) + float(
                    info.get("seconds", 0.0)
                )
    if not totals:
        return "(no stage breakdown recorded)"
    return "  ".join(
        f"{name}={seconds:.1f}s" for name, seconds in sorted(totals.items())
    )


#: Artifact-reuse counters worth a line per phase: how often each lattice
#: level (trace / reuse profile / hit mask) was served without rebuilding,
#: and how many reuse folds ran incrementally over a phase delta.
_CACHE_COUNTERS = (
    "cache.trace_hits",
    "cache.reuse_hits",
    "cache.store_reuse_hits",
    "cache.reuse_extends",
    "cache.mask_hits",
)


def _cache_summary(phase: str) -> str:
    """One-line artifact-reuse counter summary over a phase's rows."""
    totals: dict[str, float] = {}
    for entry in _records():
        if entry.get("phase") != phase:
            continue
        counters = (entry.get("metrics") or {}).get("counters")
        if not isinstance(counters, dict):
            continue
        for name in _CACHE_COUNTERS:
            if name in counters:
                totals[name] = totals.get(name, 0.0) + float(counters[name])
    if not totals:
        return "(no cache counters recorded)"
    return "  ".join(
        f"{name.removeprefix('cache.')}={int(value)}"
        for name, value in sorted(totals.items())
    )


def main() -> int:
    print(f"cpus={os.cpu_count()}  cold-slowdown tolerance "
          f"{COLD_SLOWDOWN_TOLERANCE:.2f}x")
    BENCH_JSON.write_text("[]\n")  # refresh: this sweep IS the record
    with tempfile.TemporaryDirectory(prefix="repro-scaling-") as tmp:
        store2 = Path(tmp) / "store-j2"
        store4 = Path(tmp) / "store-j4"
        phases = [
            ("serial", 1, None),
            ("cold-2", 2, store2),
            ("warm-2", 2, store2),
            ("cold-4", 4, store4),
            ("warm-4", 4, store4),
        ]
        timings: dict[str, float] = {}
        digests: dict[str, str] = {}
        for phase, jobs, store in phases:
            print(f"{phase:8s} (jobs={jobs}) ...", flush=True)
            timings[phase], digests[phase] = run_phase(phase, jobs, store)
            print(f"{phase:8s} {timings[phase]:7.1f} s  "
                  f"fig5 sha256={digests[phase][:12]}", flush=True)
            print(f"{'':8s} stages: {_stage_summary(phase)}", flush=True)
            print(f"{'':8s} cache:  {_cache_summary(phase)}", flush=True)

    # Annotate the record with a structured diagnosis of any cold phase
    # that lost to serial, so the committed file documents the regression
    # (suspected cause + stage deltas) instead of silently carrying it.
    records = _records()
    diagnoses = diagnose_cold_parallel(records)
    if diagnoses:
        BENCH_JSON.write_text(json.dumps(records + diagnoses, indent=2) + "\n")
        for diag in diagnoses:
            print(f"\ncold-parallel diagnosis ({diag['phase']}): "
                  f"{diag['suspected_cause']}")

    serial = timings["serial"]
    failures = []
    for phase in ("cold-2", "warm-2", "cold-4", "warm-4"):
        if digests[phase] != digests["serial"]:
            failures.append(f"{phase}: fig5.txt differs from serial")
    print("\nspeedup vs serial:")
    for phase in ("cold-2", "warm-2", "cold-4", "warm-4"):
        speedup = serial / timings[phase]
        print(f"  {phase:8s} {speedup:5.2f}x  ({timings[phase]:.1f} s)")
    for phase in ("cold-2", "cold-4"):
        if timings[phase] > serial * COLD_SLOWDOWN_TOLERANCE:
            failures.append(
                f"{phase}: {timings[phase]:.1f} s vs serial {serial:.1f} s "
                f"(> {COLD_SLOWDOWN_TOLERANCE:.2f}x tolerance)"
            )
    warm4 = serial / timings["warm-4"]
    if warm4 < WARM_TARGET_SPEEDUP:
        failures.append(
            f"warm-4: {warm4:.2f}x < target {WARM_TARGET_SPEEDUP:.1f}x"
        )
    if failures:
        print("\nFAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nall artifacts bit-identical; warm-4 speedup {warm4:.2f}x "
          f"(target {WARM_TARGET_SPEEDUP:.1f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
