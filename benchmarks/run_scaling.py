#!/usr/bin/env python
"""Scaling study for the shared data plane: ``make bench-scaling``.

Runs the Figure 5 reproduction end-to-end through ``repro.cli`` in five
configurations and refreshes ``BENCH_parallel.json`` with the measured
rows:

1. ``serial``  — ``--jobs 1``, no trace store (the baseline the paper
   artifacts were produced with);
2. ``cold-2``  — ``--jobs 2`` against a *fresh* trace store (the cold
   pipeline stages trace builds and folds across workers while the
   single-flight leases keep every artifact built exactly once);
3. ``warm-2``  — ``--jobs 2`` against the store phase 2 filled;
4. ``cold-4``  — ``--jobs 4``, fresh store;
5. ``warm-4``  — ``--jobs 4``, warm store.

``--cold`` runs only phases 1-2 (the quick ``make bench-cold`` gate)
and, unless ``--out`` points elsewhere, writes its rows to a scratch
record instead of refreshing the committed one.

Each phase is a separate process, so nothing leaks between phases except
the on-disk store.  After every phase the ``fig5.txt`` artifact digest is
compared against the serial run: the data plane must be invisible in
results (bit-identical figures) while changing only the wall-clock.

Every recorded row carries a per-stage wall-clock breakdown (graph
build / trace generation / reuse-profile build / mask derivation /
direct hit-mask solve / profile build / pricing — see
:func:`repro.sim.parallel.stage_breakdown`), printed per phase, so a
regressed configuration names the stage that slowed down instead of
just the total.  ``stage.reuse_build`` + ``stage.mask_derive`` replace
most of ``stage.hit_mask`` since masks are derived from compiled reuse
profiles (:mod:`repro.sim.reusepack`); the direct stage only appears
for cache models the profile cannot describe.

Exit status is non-zero if any phase produces different bytes, if a warm
parallel run fails to beat serial, or if a cold parallel run falls below
the machine-calibrated speedup floor.  The floor is also *recorded* as a
``cold_parallel_speedup`` invariant row in the record file, so
``repro.bench.regression --strict`` re-enforces it on every bench-smoke
without rerunning the sweep: cold parallel beating serial is a gated
invariant now, not a documented regression.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
ARTIFACT = REPO / "benchmarks" / "results" / "fig5.txt"
BENCH_JSON = REPO / "BENCH_parallel.json"
COLD_JSON = REPO / "benchmarks" / "results" / "BENCH_cold.json"

sys.path.insert(0, str(REPO / "src"))
from repro.bench.regression import diagnose_cold_parallel  # noqa: E402
from repro.mem.trace import worker_byte_budget  # noqa: E402

#: Minimum cold-parallel speedup over serial.  With >1 core the staged
#: trace/fold DAG overlaps store I/O with compute across workers, so
#: cold parallel must not lose to serial at all.  On a single core the
#: pipeline can only hide buffered store writeback, not compute, so a
#: small concession absorbs fork/IPC cost and scheduling noise.
COLD_SPEEDUP_FLOOR = 1.0 if (os.cpu_count() or 1) > 1 else 0.9
#: A warm 4-worker run must beat serial by at least this factor.
WARM_TARGET_SPEEDUP = 1.8

#: Fixed worker-image allowance on top of ``REPRO_WORKER_BYTES`` when
#: gating peak worker RSS.  ``ru_maxrss`` counts the whole process —
#: interpreter + JIT, the COW-shared memoised graph datasets, store
#: ``mmap`` pages — none of which the trace byte budget governs.  The
#: gate exists to catch the chunked-fold path regressing into flat
#: multi-GB trace materialisation, which dwarfs this allowance.
RSS_OVERHEAD_BYTES = 512 * 2**20

#: The record file this invocation appends to (set by ``main``).
record_path = BENCH_JSON


def run_phase(phase: str, jobs: int, store: Path | None) -> tuple[float, str]:
    """Run ``reproduce fig5`` once; returns (wall seconds, artifact digest)."""
    cmd = [
        sys.executable, "-m", "repro.cli", "reproduce", "fig5",
        "--jobs", str(jobs),
    ]
    if store is not None:
        cmd += ["--trace-store", str(store)]
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_PARALLEL_JSON"] = str(record_path)
    before = len(_records())
    os.sync()  # don't bill this phase for the previous phase's writeback
    start = time.perf_counter()
    subprocess.run(cmd, cwd=REPO, env=env, check=True,
                   stdout=subprocess.DEVNULL)
    elapsed = time.perf_counter() - start
    _tag_new_records(before, phase)
    digest = hashlib.sha256(ARTIFACT.read_bytes()).hexdigest()
    return elapsed, digest


def _records() -> list[dict]:
    if not record_path.exists():
        return []
    return json.loads(record_path.read_text())


def _tag_new_records(start_index: int, phase: str) -> None:
    records = _records()
    for entry in records[start_index:]:
        entry["phase"] = phase
    record_path.write_text(json.dumps(records, indent=2) + "\n")


def _stage_summary(phase: str) -> str:
    """One-line per-stage wall-clock breakdown over a phase's rows."""
    totals: dict[str, float] = {}
    for entry in _records():
        if entry.get("phase") != phase:
            continue
        stages = entry.get("stages")
        if not isinstance(stages, dict):
            continue
        for name, info in stages.items():
            if isinstance(info, dict):
                totals[name] = totals.get(name, 0.0) + float(
                    info.get("seconds", 0.0)
                )
    if not totals:
        return "(no stage breakdown recorded)"
    return "  ".join(
        f"{name}={seconds:.1f}s"
        for name, seconds in sorted(totals.items())
        if seconds > 0
    ) or "(all stages zero)"


#: Artifact-reuse counters worth a line per phase: how often each lattice
#: level (trace / reuse profile / hit mask) was served without rebuilding,
#: and how many reuse folds ran incrementally over a phase delta.
_CACHE_COUNTERS = (
    "cache.trace_hits",
    "cache.reuse_hits",
    "cache.store_reuse_hits",
    "cache.reuse_extends",
    "cache.mask_hits",
)


def _cache_summary(phase: str) -> str:
    """One-line artifact-reuse counter summary over a phase's rows."""
    totals: dict[str, float] = {}
    for entry in _records():
        if entry.get("phase") != phase:
            continue
        counters = (entry.get("metrics") or {}).get("counters")
        if not isinstance(counters, dict):
            continue
        for name in _CACHE_COUNTERS:
            if name in counters:
                totals[name] = totals.get(name, 0.0) + float(counters[name])
    if not totals:
        return "(no cache counters recorded)"
    return "  ".join(
        f"{name.removeprefix('cache.')}={int(value)}"
        for name, value in sorted(totals.items())
    )


def _phase_worker_rss(phase: str) -> int:
    """The largest worker RSS any of a phase's pool rows reported."""
    worst = 0
    for entry in _records():
        if entry.get("phase") != phase:
            continue
        pool = entry.get("pool")
        if isinstance(pool, dict):
            worst = max(worst, int(pool.get("worker_rss_bytes", 0)))
    return worst


def _speedup_row(phase: str, jobs: int, serial: float, cold: float) -> dict:
    """The ``cold_parallel_speedup`` invariant row for one cold phase.

    The row carries its own machine-calibrated floor, so the regression
    gate (:func:`repro.bench.regression.cold_speedup_violations`) can
    re-judge it later without knowing anything about this machine — and
    the worker memory ceiling travels with the speedup it made possible.
    """
    return {
        "kind": "cold_parallel_speedup",
        "benchmark": "fig5",
        "phase": phase,
        "jobs": jobs,
        "speedup": round(serial / cold, 4),
        "floor": COLD_SPEEDUP_FLOOR,
        "serial_seconds": round(serial, 3),
        "cold_seconds": round(cold, 3),
        "worker_rss_bytes": _phase_worker_rss(phase),
        "worker_bytes_budget": worker_byte_budget(),
        "worker_rss_allowance": RSS_OVERHEAD_BYTES,
    }


def main(argv: list[str] | None = None) -> int:
    global record_path
    parser = argparse.ArgumentParser(
        description="fig5 scaling sweep over serial/cold/warm pool phases"
    )
    parser.add_argument(
        "--cold", action="store_true",
        help="run only the serial + cold-2 phases (the bench-cold gate) "
        "and write to a scratch record instead of BENCH_parallel.json",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="record file to (re)write (default: BENCH_parallel.json, "
        "or benchmarks/results/BENCH_cold.json with --cold)",
    )
    args = parser.parse_args(argv)
    if args.out is not None:
        record_path = Path(args.out)
    elif args.cold:
        record_path = COLD_JSON
    record_path.parent.mkdir(parents=True, exist_ok=True)

    print(f"cpus={os.cpu_count()}  cold-speedup floor "
          f"{COLD_SPEEDUP_FLOOR:.2f}x  record={record_path.name}")
    record_path.write_text("[]\n")  # refresh: this sweep IS the record
    with tempfile.TemporaryDirectory(prefix="repro-scaling-") as tmp:
        store2 = Path(tmp) / "store-j2"
        store4 = Path(tmp) / "store-j4"
        phases = [
            ("serial", 1, None),
            ("cold-2", 2, store2),
        ]
        if not args.cold:
            phases += [
                ("warm-2", 2, store2),
                ("cold-4", 4, store4),
                ("warm-4", 4, store4),
            ]
        timings: dict[str, float] = {}
        digests: dict[str, str] = {}
        for phase, jobs, store in phases:
            print(f"{phase:8s} (jobs={jobs}) ...", flush=True)
            timings[phase], digests[phase] = run_phase(phase, jobs, store)
            print(f"{phase:8s} {timings[phase]:7.1f} s  "
                  f"fig5 sha256={digests[phase][:12]}", flush=True)
            print(f"{'':8s} stages: {_stage_summary(phase)}", flush=True)
            print(f"{'':8s} cache:  {_cache_summary(phase)}", flush=True)

    serial = timings["serial"]
    parallel_phases = [name for name, _, _ in phases if name != "serial"]
    cold_phases = [
        (name, jobs) for name, jobs, _ in phases if name.startswith("cold-")
    ]

    # Append the gated invariant rows (cold speedup with self-carried
    # floor) and, should a cold phase still lose to serial, a structured
    # diagnosis naming the suspected cause and per-stage deltas.
    records = _records()
    invariants = [
        _speedup_row(name, jobs, serial, timings[name])
        for name, jobs in cold_phases
    ]
    diagnoses = diagnose_cold_parallel(records)
    record_path.write_text(
        json.dumps(records + invariants + diagnoses, indent=2) + "\n"
    )
    for diag in diagnoses:
        print(f"\ncold-parallel diagnosis ({diag['phase']}): "
              f"{diag['suspected_cause']}")

    failures = []
    for phase in parallel_phases:
        if digests[phase] != digests["serial"]:
            failures.append(f"{phase}: fig5.txt differs from serial")
    print("\nspeedup vs serial:")
    for phase in parallel_phases:
        speedup = serial / timings[phase]
        print(f"  {phase:8s} {speedup:5.2f}x  ({timings[phase]:.1f} s)")
    for row in invariants:
        if row["speedup"] < row["floor"]:
            failures.append(
                f"{row['phase']}: cold speedup {row['speedup']:.2f}x is "
                f"below the {row['floor']:.2f}x floor "
                f"({row['cold_seconds']:.1f} s vs serial "
                f"{row['serial_seconds']:.1f} s)"
            )
        budget = int(row["worker_bytes_budget"])
        rss = int(row["worker_rss_bytes"])
        if rss and budget and rss > budget + RSS_OVERHEAD_BYTES:
            failures.append(
                f"{row['phase']}: worker RSS {rss / 2**20:.0f} MiB exceeds "
                f"the REPRO_WORKER_BYTES budget {budget / 2**20:.0f} MiB "
                f"plus the {RSS_OVERHEAD_BYTES / 2**20:.0f} MiB process-"
                f"image allowance"
            )
    if not args.cold:
        warm4 = serial / timings["warm-4"]
        if warm4 < WARM_TARGET_SPEEDUP:
            failures.append(
                f"warm-4: {warm4:.2f}x < target {WARM_TARGET_SPEEDUP:.1f}x"
            )
    if failures:
        print("\nFAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    cold2 = serial / timings["cold-2"]
    summary = (f"\nall artifacts bit-identical; cold-2 speedup {cold2:.2f}x "
               f"(floor {COLD_SPEEDUP_FLOOR:.2f}x)")
    if not args.cold:
        summary += (f"; warm-4 speedup {serial / timings['warm-4']:.2f}x "
                    f"(target {WARM_TARGET_SPEEDUP:.1f}x)")
    print(summary)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
