"""Observability overhead gate (``make bench-smoke``).

Runs one representative figure cell (PR/twitter smoke) serially twice:
with the telemetry plane **off** (no ``REPRO_TRACE``, the zero-cost
``_NULL_SPAN`` path) and **on** (span tracing armed to a scratch file,
metrics registry live).  Three guarantees are checked:

1. the produced figures are **bit-identical** between modes — tracing
   must observe the run, never perturb it;
2. the wall-clock overhead of the *on* mode stays under
   :data:`OVERHEAD_LIMIT` (3%) — asserted here and again by the
   ``--strict`` regression gate on the recorded row;
3. the run leaves an ``obs_overhead`` row in the record file
   (``REPRO_PARALLEL_JSON``) carrying both timings, so ``make
   bench-smoke`` can enforce the budget even on machines where the
   committed baseline has no matching row.

Both modes replay the same memory-resident trace cache (primed once
before any timing), so the comparison isolates instrumentation cost
from trace construction.
"""

import os
import time

from repro.bench.workloads import _cell_spec, bench_scale
from repro.obs import reset_all
from repro.obs.tracer import TRACE_ENV, reset_process_tracer
from repro.sim.parallel import execute_job, record_parallel_timing
from repro.sim.tracecache import TraceCache

#: Maximum tolerated fractional wall overhead with telemetry armed.
OVERHEAD_LIMIT = 0.03

#: Timing repetitions per mode; the minimum is what the machine can do.
ROUNDS = 5


def _figures(cell) -> tuple:
    """The deterministic figure payload of one cell result."""
    return (
        cell.baseline.seconds,
        cell.reference.seconds,
        cell.atmem.seconds,
        cell.atmem.data_ratio,
        cell.atmem.migration.bytes_moved,
    )


def _best_of(n, fn):
    best, result = float("inf"), None
    for _ in range(n):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_obs_overhead(once, tmp_path):
    spec = _cell_spec("nvm_dram", "PR", "twitter")
    cache = TraceCache(store=None)
    once(lambda: execute_job(spec, trace_cache=cache))  # prime, untimed mode

    saved = os.environ.get(TRACE_ENV)
    try:
        os.environ.pop(TRACE_ENV, None)
        reset_process_tracer()
        reset_all()
        off_seconds, off_cell = _best_of(
            ROUNDS, lambda: execute_job(spec, trace_cache=cache)
        )

        os.environ[TRACE_ENV] = str(tmp_path / "obs-overhead.trace")
        reset_process_tracer()
        reset_all()
        on_seconds, on_cell = _best_of(
            ROUNDS, lambda: execute_job(spec, trace_cache=cache)
        )
    finally:
        if saved is None:
            os.environ.pop(TRACE_ENV, None)
        else:
            os.environ[TRACE_ENV] = saved
        reset_process_tracer()
        reset_all()

    # Zero-cost-off means zero-effect-on: same inputs, same figures.
    assert _figures(off_cell) == _figures(on_cell)

    overhead = on_seconds / max(off_seconds, 1e-9) - 1.0
    record_parallel_timing(
        {
            "benchmark": "obs_overhead",
            "jobs": 1,
            "cells": 1,
            "scale": bench_scale(),
            "rounds": ROUNDS,
            "wall_seconds": round(on_seconds, 4),
            "baseline_seconds": round(off_seconds, 4),
            "overhead_fraction": round(overhead, 4),
            "limit": OVERHEAD_LIMIT,
        }
    )
    assert overhead < OVERHEAD_LIMIT, (
        f"telemetry overhead {overhead:.1%} exceeds the "
        f"{OVERHEAD_LIMIT:.0%} budget "
        f"(on={on_seconds:.4f}s off={off_seconds:.4f}s)"
    )
