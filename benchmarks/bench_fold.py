"""Reuse-fold microbenchmark (``make bench-fold``).

Times the three ways a figure cell can obtain working-set hit masks for
one representative trace (the PR/twitter smoke cell):

1. **argsort fold** — the vectorised O(N log N) fallback
   (:func:`repro.mem.cache._argsort_reuse_gaps`);
2. **last-seen kernel** — the O(N) numba fold
   (:func:`repro.mem.cachejit.reuse_gap_kernel`), when numba is
   importable and ``REPRO_JIT`` allows it (compile time excluded, like
   any warmed JIT); on this container the column records ``null`` and
   the selected path equals the fallback;
3. **store-loaded curve** — a v2 reuse artifact round-tripped through a
   scratch :class:`repro.sim.tracestore.TraceStore`, answering a whole
   capacity sweep with zero per-process cast+cumsum.

All paths must agree bit-for-bit before anything is recorded.  The
``reuse_speedup`` row lands in ``BENCH_parallel.json`` (or the file
``REPRO_PARALLEL_JSON`` points at — ``make bench-smoke`` routes it into
the scratch record checked by the ``--strict`` regression gate).  A
second ``trace_gen_vectorize`` row documents the synthetic-trace-
generation satellite: the SSSP segment-min as one unordered scatter-min
versus the old argsort+reduceat walk, verified equivalent on the same
relaxation data.
"""

import time

import numpy as np

from repro.bench.workloads import _cell_spec, bench_scale
from repro.mem.cache import (
    GAP_COLD,
    WorkingSetCache,
    _argsort_reuse_gaps,
    reuse_time_gaps,
)
from repro.mem.cachejit import reuse_gap_kernel
from repro.sim.parallel import execute_job, record_parallel_timing
from repro.sim.reusepack import build_reuse_profile
from repro.sim.tracecache import TraceCache
from repro.sim.tracestore import TraceStore

#: Same capacity sweep as the mask_speedup row in bench_parallel_engine.
SWEEP_BYTES = (16 << 10, 32 << 10, 64 << 10, 128 << 10)

INF = np.iinfo(np.int64).max // 2


def _smoke_addresses() -> np.ndarray:
    """The PR/twitter smoke cell's program-order address stream."""
    spec = _cell_spec("nvm_dram", "PR", "twitter")
    cache = TraceCache(store=None)
    execute_job(spec, trace_cache=cache)
    trace = cache.trace(spec.trace_key(), lambda: None)  # served from memory
    return np.ascontiguousarray(trace.all_addresses(), dtype=np.int64)


def _best_of(n, fn):
    """Minimum wall-clock over ``n`` runs — the recorded ``*_seconds``
    feed the 25% regression gate, and the minimum is what the hardware
    can do; the rest is scheduling jitter."""
    best, result = np.inf, None
    for _ in range(n):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_reuse_fold_speedup(once, tmp_path):
    addrs = _smoke_addresses()
    lines = addrs >> 6

    once(lambda: _argsort_reuse_gaps(lines))  # benchmark-plumbed round
    argsort_seconds, argsort_gaps = _best_of(
        3, lambda: _argsort_reuse_gaps(lines)
    )

    kernel = reuse_gap_kernel()
    kernel_seconds = None
    if kernel is not None:
        reuse_time_gaps(addrs)  # pay the one-time numba compile here
        kernel_seconds, selected_gaps = _best_of(
            3, lambda: reuse_time_gaps(addrs)
        )
        selected_seconds = kernel_seconds
    else:
        selected_seconds, selected_gaps = _best_of(
            3, lambda: reuse_time_gaps(addrs)
        )
    assert np.array_equal(argsort_gaps, selected_gaps)

    # Curve persistence: a store round-trip must answer the sweep without
    # the per-process cast+cumsum a fresh profile pays lazily.
    store = TraceStore(tmp_path / "fold-store")
    profile = build_reuse_profile(addrs)
    key = ("bench_fold", "pr-twitter")
    store.save_trace(key, _trace_of(addrs))
    assert store.save_reuse(key, profile.line_size, profile)

    fresh = build_reuse_profile(addrs)
    start = time.perf_counter()
    fresh_masks = [
        fresh.hit_mask_for(WorkingSetCache(size)) for size in SWEEP_BYTES
    ]
    fresh_seconds = time.perf_counter() - start

    loaded = store.load_reuse(key, profile.line_size, profile.n)
    assert loaded is not None
    start = time.perf_counter()
    loaded_masks = [
        loaded.hit_mask_for(WorkingSetCache(size)) for size in SWEEP_BYTES
    ]
    curve_seconds = time.perf_counter() - start
    for want, got in zip(fresh_masks, loaded_masks):
        assert np.array_equal(want, got)

    record_parallel_timing(
        {
            "benchmark": "reuse_speedup",
            "jobs": 1,
            "cells": len(SWEEP_BYTES),
            "scale": bench_scale(),
            "accesses": int(addrs.size),
            "jit": kernel is not None,
            "wall_seconds": round(selected_seconds, 4),
            "argsort_seconds": round(argsort_seconds, 4),
            "kernel_seconds": (
                round(kernel_seconds, 4) if kernel_seconds is not None else None
            ),
            "fresh_curve_seconds": round(fresh_seconds, 4),
            "store_curve_seconds": round(curve_seconds, 4),
            "speedup": round(argsort_seconds / max(selected_seconds, 1e-9), 2),
            "curve_speedup": round(fresh_seconds / max(curve_seconds, 1e-9), 2),
        }
    )


def _trace_of(addrs: np.ndarray):
    from repro.mem.trace import AccessTrace

    trace = AccessTrace()
    trace.add(addrs, label="bench-fold")
    return trace


def _segment_min_reference(targets, candidate, dist):
    """The pre-vectorisation SSSP relaxation: argsort + reduceat."""
    order = np.argsort(targets, kind="stable")
    sorted_targets = targets[order]
    sorted_candidates = candidate[order]
    run_starts = np.nonzero(
        np.concatenate(([True], sorted_targets[1:] != sorted_targets[:-1]))
    )[0]
    best = np.minimum.reduceat(sorted_candidates, run_starts)
    unique_targets = sorted_targets[run_starts]
    improved_mask = best < dist[unique_targets]
    return unique_targets[improved_mask], best[improved_mask]


def _segment_min_scatter(targets, candidate, dist, scratch):
    """The shipped relaxation: one unordered scatter-min, sparse reset."""
    np.minimum.at(scratch, targets, candidate)
    improved = np.nonzero(scratch < dist)[0]
    values = scratch[improved]
    scratch[targets] = INF
    return improved, values


def test_trace_gen_vectorize(once):
    """One representative SSSP relaxation round, folded both ways.

    Sized so the scatter fold lands well clear of timer noise (the
    recorded ``wall_seconds`` feeds the 25% regression gate), and timed
    best-of-3 — the minimum is what the hardware can do, the rest is
    scheduling jitter.
    """
    rng = np.random.default_rng(17)
    n_vertices = 1_600_000
    n_edges = 12_800_000
    targets = rng.integers(0, n_vertices, n_edges, dtype=np.int64)
    candidate = rng.integers(0, 1 << 30, n_edges, dtype=np.int64)
    dist = rng.integers(0, 1 << 30, n_vertices, dtype=np.int64)
    dist[dist % 3 == 0] = INF  # a mix of settled and unreached vertices

    start = time.perf_counter()
    ref_improved, ref_values = once(
        lambda: _segment_min_reference(targets, candidate, dist)
    )
    reference_seconds = time.perf_counter() - start

    scratch = np.full(n_vertices, INF, dtype=np.int64)
    scatter_seconds = np.inf
    for _ in range(3):
        start = time.perf_counter()
        improved, values = _segment_min_scatter(
            targets, candidate, dist, scratch
        )
        scatter_seconds = min(
            scatter_seconds, time.perf_counter() - start
        )

    assert np.array_equal(ref_improved, improved)
    assert np.array_equal(ref_values, values)
    assert np.all(scratch[targets] == INF)  # the sparse reset held

    record_parallel_timing(
        {
            "benchmark": "trace_gen_vectorize",
            "jobs": 1,
            "cells": 1,
            "scale": bench_scale(),
            "edges": int(n_edges),
            "wall_seconds": round(scatter_seconds, 4),
            "reference_seconds": round(reference_seconds, 4),
            "speedup": round(
                reference_seconds / max(scatter_seconds, 1e-9), 2
            ),
        }
    )
