"""Figure 1: the motivation study.

- Fig. 1a — execution time with all data on Optane NVM, normalised to all
  data on DRAM (paper: up to ~10x slower, worst for gather-heavy kernels).
- Fig. 1b — execution time with all data on KNL DRAM, normalised to the
  MCDRAM-preferred NUMA policy (paper: up to ~3x).
"""

from repro.bench.figures import fig1a, fig1b
from repro.bench.report import emit


def test_fig1a_nvm_vs_dram(once):
    table = once(fig1a)
    emit(table, "fig1a.txt")
    ratios = [float(r[-1]) for r in table.rows]
    # Placing everything on NVM must hurt, substantially for the big inputs.
    assert all(r >= 1.0 for r in ratios)
    assert max(ratios) > 3.0, "expected multi-x slowdowns on NVM"
    assert max(ratios) < 15.0, "slowdown beyond the paper's ~10x ballpark"


def test_fig1b_dram_vs_mcdram_preferred(once):
    table = once(fig1b)
    emit(table, "fig1b.txt")
    ratios = [float(r[-1]) for r in table.rows]
    # MCDRAM-p should help, but far less than the NVM/DRAM gap.
    assert max(ratios) > 1.1
    assert max(ratios) < 5.0
