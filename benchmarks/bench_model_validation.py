"""Validation of the simulator's models against ground truth.

A reproduction is only as credible as its models; these benchmarks check
the three load-bearing ones on benchmark-scale inputs:

- the working-set LLC model against exact Mattson stack distances
  (fully-associative LRU), on a real application trace;
- the cost model's bandwidth bounds against analytic expectations;
- the TLB model's huge-page reach against the 512x architectural ratio.
"""

import numpy as np

from repro.apps import make_app
from repro.bench.report import Table, emit
from repro.bench.workloads import bench_platform, bench_scale
from repro.graph.datasets import dataset_by_name
from repro.mem.cache import LINE_SIZE, WorkingSetCache
from repro.mem.stack_distance import lru_hit_mask
from repro.mem.tlb import TLB


def test_llc_model_vs_exact_lru_on_app_trace(once):
    """Working-set model vs exact LRU on a real PageRank trace sample."""

    def run():
        from repro.apps.base import HostRegistry

        graph = dataset_by_name("rmat24", scale=max(bench_scale(), 4096))
        app = make_app("PR", graph, num_sweeps=1)
        app.register(HostRegistry())
        trace = app.run_once()
        addrs = trace.all_addresses()
        # Exact stack distances are Python-loop bound: validate on a window
        # positioned over the rank-gather phase (random accesses with
        # reuse), skipping the cold sequential scans where every model
        # trivially agrees.
        skip = graph.num_vertices + graph.num_edges + 1
        window = addrs[skip : skip + 60_000]
        rows = []
        for llc_kib in (8, 16, 32, 64):
            capacity = llc_kib * 1024 // LINE_SIZE
            exact = float(np.count_nonzero(~lru_hit_mask(window, capacity)))
            ws_model = WorkingSetCache(llc_kib * 1024)
            approx = float(np.count_nonzero(~ws_model.hit_mask(window)))
            rows.append((llc_kib, exact, approx, approx / max(1.0, exact)))
        return rows

    rows = once(run)
    table = Table(
        title="Model validation: working-set LLC vs exact LRU (PR trace)",
        columns=["llc_KiB", "exact_misses", "model_misses", "ratio"],
    )
    for row in rows:
        table.add_row(*row)
    emit(table, "validation_llc.txt")
    for _, exact, approx, ratio in rows:
        assert 0.7 < ratio < 1.4, f"LLC model off by {ratio:.2f}x"
    # Monotonicity across capacities must match ground truth.
    exacts = [r[1] for r in rows]
    models = [r[2] for r in rows]
    assert all(a >= b for a, b in zip(exacts, exacts[1:]))
    assert all(a >= b for a, b in zip(models, models[1:]))


def test_cost_model_bandwidth_bounds(once):
    """Sequential streams must charge within 10% of bytes/bandwidth."""

    def run():
        from repro.mem.trace import AccessKind, TracePhase

        platform = bench_platform("nvm_dram")
        system = platform.build_system()
        n = 1_000_000
        phase = TracePhase(
            np.arange(n, dtype=np.int64) * LINE_SIZE,
            kind=AccessKind.SEQUENTIAL,
        )
        mask = np.ones(n, dtype=bool)
        rows = []
        for tier_id, tier in enumerate(system.tiers):
            cost = system.cost_model.phase_cost(
                phase, mask, np.full(n, tier_id, dtype=np.int8)
            )
            memory_seconds = cost.seconds - n * platform.compute_ns_per_access * 1e-9
            analytic = n * LINE_SIZE / (tier.read_bandwidth_gbps * 1e9)
            rows.append((tier.name, memory_seconds * 1e3, analytic * 1e3))
        return rows

    rows = once(run)
    table = Table(
        title="Model validation: sequential stream vs analytic bandwidth bound",
        columns=["tier", "charged_ms", "bytes_over_bw_ms"],
    )
    for row in rows:
        table.add_row(*row)
    emit(table, "validation_bandwidth.txt")
    for _, charged, analytic in rows:
        assert charged >= analytic * 0.99
        assert charged <= analytic * 1.25


def test_tlb_huge_page_reach(once):
    """Huge pages must cut the TLB misses of a page-scale random walk ~512x
    when both mappings thrash (architectural reach ratio)."""

    def run():
        rng = np.random.default_rng(17)
        # 512 MiB of address space, far beyond either mapping's TLB reach.
        addrs = rng.integers(0, 512 << 20, size=500_000).astype(np.int64)
        tlb = TLB(16)
        base = tlb.count_misses(addrs, np.full(addrs.size, 12, dtype=np.int64))
        tlb.reset()
        huge = tlb.count_misses(addrs, np.full(addrs.size, 21, dtype=np.int64))
        return base, huge

    base, huge = once(run)
    table = Table(
        title="Model validation: TLB miss reduction from 2 MiB mappings",
        columns=["mapping", "misses"],
    )
    table.add_row("4 KiB pages", base)
    table.add_row("2 MiB pages", huge)
    emit(table, "validation_tlb.txt")
    assert base > 0.95 * 500_000  # 4 KiB mappings thrash completely
    assert huge < base  # huge pages strictly better
    # 512 MiB / 2 MiB = 256 huge pages vs 16 entries: still conflict-bound,
    # but far below the base-page miss count.
    assert huge < 0.99 * base
