"""Table 4: the multi-stage multi-threaded migration vs mbind (PR).

Paper: ATMem migrates 1.3x-2.7x faster on NVM-DRAM (avg 2.07x) and
3.0x-8.2x faster on MCDRAM-DRAM (avg 5.32x), and dramatically reduces
post-migration TLB misses (avg 20.98x on NVM-DRAM, 1.72x on KNL).
"""

import numpy as np

from repro.bench.report import emit
from repro.bench.tables import table4


def test_table4_migration_comparison(once):
    table = once(table4)
    emit(table, "table4.txt")
    rows = {(r[0], r[1]): (float(r[2]), float(r[3])) for r in table.rows}
    nvm_times = [v[1] for k, v in rows.items() if k[0] == "nvm_dram"]
    knl_times = [v[1] for k, v in rows.items() if k[0] == "mcdram_dram"]
    nvm_tlb = [v[0] for k, v in rows.items() if k[0] == "nvm_dram"]
    knl_tlb = [v[0] for k, v in rows.items() if k[0] == "mcdram_dram"]

    # Migration time: ATMem wins except possibly on the tiniest dataset
    # (pokec is ~300 KiB at reproduction scale, where ATMem's fixed
    # per-region overhead dominates); the KNL gap is wider because mbind
    # is stuck on one weak core (the paper's explanation).
    assert sum(t <= 1.0 for t in nvm_times) <= 1
    assert sum(t <= 1.0 for t in knl_times) <= 1
    assert float(np.mean(knl_times)) > float(np.mean(nvm_times))
    assert 1.2 < float(np.mean(nvm_times)) < 5.0  # paper avg 2.07x
    assert 2.0 < float(np.mean(knl_times)) < 12.0  # paper avg 5.32x

    # TLB misses: mbind's THP splitting always costs at least as much, and
    # the Xeon testbed shows a much larger blow-up than KNL, whose tiny
    # SMT-shared TLBs keep the baseline miss floor high (as in the paper).
    assert min(nvm_tlb + knl_tlb) >= 0.99
    assert max(nvm_tlb) > 5.0
    assert float(np.mean(nvm_tlb)) > float(np.mean(knl_tlb))
    assert 1.0 <= float(np.mean(knl_tlb)) < 3.0  # paper avg 1.72x
